package hot

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"

	"github.com/hotindex/hot/internal/chaos"
	"github.com/hotindex/hot/internal/dataset"
	"github.com/hotindex/hot/internal/persist"
	"github.com/hotindex/hot/internal/tidstore"
)

// TestShardedSnapshotRoundTrip: snapshot → load must preserve the boundary
// table, every shard's contents, and the global iteration order for all
// data-set shapes and shard counts.
func TestShardedSnapshotRoundTrip(t *testing.T) {
	for _, kind := range dataset.Kinds() {
		for _, shards := range []int{1, 4, 8} {
			t.Run(fmt.Sprintf("%s/s%d", kind, shards), func(t *testing.T) {
				keys := dataset.Generate(kind, 3000, 43)
				s := &tidstore.Store{}
				for _, k := range keys {
					s.Add(k)
				}
				orig, _ := buildPair(keys, s, shards)

				var buf bytes.Buffer
				if err := orig.Snapshot(&buf); err != nil {
					t.Fatal(err)
				}
				got, err := LoadShardedTree(bytes.NewReader(buf.Bytes()), s.Key)
				if err != nil {
					t.Fatal(err)
				}
				if got.Len() != orig.Len() {
					t.Fatalf("Len %d != %d", got.Len(), orig.Len())
				}
				if err := got.Verify(); err != nil {
					t.Fatal(err)
				}
				wb, gb := orig.Boundaries(), got.Boundaries()
				if len(wb) != len(gb) {
					t.Fatalf("boundary count %d != %d", len(gb), len(wb))
				}
				for i := range wb {
					if !bytes.Equal(wb[i], gb[i]) {
						t.Fatalf("boundary %d differs: %x vs %x", i, gb[i], wb[i])
					}
				}
				// Per-shard placement must be identical, not just the union.
				for i := 0; i < orig.Shards(); i++ {
					if orig.ShardLen(i) != got.ShardLen(i) {
						t.Fatalf("shard %d len %d != %d", i, got.ShardLen(i), orig.ShardLen(i))
					}
				}
				want := scanSeq(orig, s)
				gotSeq := scanSeq(got, s)
				for i := range want {
					if !bytes.Equal(want[i], gotSeq[i]) {
						t.Fatalf("iteration diverges at %d", i)
					}
				}
			})
		}
	}
}

// TestShardedSnapshotFileRoundTrip covers the crash-safe file path plus
// the salvage loader on an undamaged file (must be Complete).
func TestShardedSnapshotFileRoundTrip(t *testing.T) {
	keys := dataset.Generate(dataset.URL, 2000, 47)
	s := &tidstore.Store{}
	for _, k := range keys {
		s.Add(k)
	}
	orig, _ := buildPair(keys, s, 4)
	path := filepath.Join(t.TempDir(), "sharded.hot")
	if err := orig.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShardedTreeFile(path, s.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("Len %d != %d", got.Len(), orig.Len())
	}
	rec, rep, err := RecoverShardedTreeFile(path, s.Key)
	if err != nil || !rep.Complete || rep.Damage != nil {
		t.Fatalf("recover of clean file: err=%v rep=%+v", err, rep)
	}
	if rec.Len() != orig.Len() || rep.Entries != uint64(orig.Len()) {
		t.Fatalf("recover salvaged %d/%d entries", rep.Entries, orig.Len())
	}
}

// TestShardedSnapshotDamageSweep truncates and bit-flips a sharded
// snapshot at offsets throughout the file. Strict load must never succeed
// on a damaged image with silently missing data unless the damage is
// outside validated bytes; Recover must either fail loudly (manifest
// damage) or salvage a verifiable tree whose scan is exactly a prefix of
// the global sorted key order — the shard sections are laid out in key
// order, so the salvage guarantee is a *global* prefix.
func TestShardedSnapshotDamageSweep(t *testing.T) {
	keys := dataset.Generate(dataset.Integer, 2500, 53)
	s := &tidstore.Store{}
	for _, k := range keys {
		s.Add(k)
	}
	orig, _ := buildPair(keys, s, 4)
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })

	dir := t.TempDir()
	checkSalvage := func(t *testing.T, name string, damaged []byte) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, rep, err := RecoverShardedTreeFile(path, s.Key)
		if err != nil {
			// Unsalvageable: must be manifest-level damage, and the strict
			// loader must agree it is unloadable.
			if _, lerr := LoadShardedTreeFile(path, s.Key); lerr == nil {
				t.Fatalf("recover failed (%v) but strict load succeeded", err)
			}
			return
		}
		if err := rec.Verify(); err != nil {
			t.Fatalf("salvaged tree fails Verify: %v", err)
		}
		if uint64(rec.Len()) != rep.Entries {
			t.Fatalf("salvaged Len %d != reported entries %d", rec.Len(), rep.Entries)
		}
		i := 0
		rec.Scan(nil, rec.Len()+1, func(tid TID) bool {
			if i >= len(sorted) || !bytes.Equal(s.Key(tid, nil), sorted[i]) {
				t.Fatalf("salvage is not a global sorted prefix at %d", i)
			}
			i++
			return true
		})
		if !rep.Complete && rep.Damage == nil {
			t.Fatal("incomplete salvage without damage report")
		}
	}

	rng := rand.New(rand.NewSource(59))
	// Truncations: header of each section, mid-file, tail.
	cuts := []int{0, 3, 15, 16, 40, len(img) / 4, len(img) / 2, len(img) - 17, len(img) - 1}
	for _, cut := range cuts {
		if cut < 0 || cut > len(img) {
			continue
		}
		checkSalvage(t, fmt.Sprintf("trunc-%d.hot", cut), append([]byte(nil), img[:cut]...))
	}
	// Bit flips at random offsets.
	for trial := 0; trial < 32; trial++ {
		damaged := append([]byte(nil), img...)
		off := rng.Intn(len(damaged))
		damaged[off] ^= 1 << uint(rng.Intn(8))
		checkSalvage(t, fmt.Sprintf("flip-%d.hot", trial), damaged)
	}
}

// TestShardedSnapshotKindMismatch: a plain tree snapshot is not a sharded
// snapshot and vice versa; both directions must fail with ErrWrongKind
// rather than misparse.
func TestShardedSnapshotKindMismatch(t *testing.T) {
	s := &tidstore.Store{}
	k := []byte("key\x00")
	plain := New(s.Key)
	plain.Insert(k, s.Add(k))
	var pb bytes.Buffer
	if err := plain.Save(&pb); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedTree(bytes.NewReader(pb.Bytes()), s.Key); err == nil {
		t.Fatal("plain snapshot loaded as sharded")
	} else if se, ok := err.(*SnapshotError); !ok || se.Kind != SnapErrWrongKind {
		t.Fatalf("want ErrWrongKind, got %v", err)
	}

	sharded, _ := buildPair([][]byte{k}, s, 2)
	var sb bytes.Buffer
	if err := sharded.Snapshot(&sb); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTree(bytes.NewReader(sb.Bytes()), s.Key); err == nil {
		t.Fatal("sharded snapshot loaded as plain")
	}
	// A sharded TREE snapshot must not load as a sharded SET either: the
	// section kinds differ even though the manifest parses.
	set := NewShardedUint64Set(2, []uint64{1 << 40, 1 << 50})
	set.Insert(42)
	var setb bytes.Buffer
	if err := set.Snapshot(&setb); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadShardedTree(bytes.NewReader(setb.Bytes()), s.Key); err == nil {
		t.Fatal("sharded set snapshot loaded as sharded tree")
	}
}

// TestShardedUint64SetSnapshotRoundTrip covers the set flavor, including
// salvage of a clean file and the embedded-key validation.
func TestShardedUint64SetSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	vals := make([]uint64, 2000)
	for i := range vals {
		vals[i] = rng.Uint64() >> 1
	}
	set := NewShardedUint64Set(4, vals)
	for _, v := range vals {
		set.Insert(v)
	}
	path := filepath.Join(t.TempDir(), "set.hot")
	if err := set.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadShardedUint64SetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != set.Len() {
		t.Fatalf("Len %d != %d", got.Len(), set.Len())
	}
	if err := got.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, v := range vals[:200] {
		if !got.Contains(v) {
			t.Fatalf("missing %d after round trip", v)
		}
	}
	rec, rep, err := RecoverShardedUint64SetFile(path)
	if err != nil || !rep.Complete {
		t.Fatalf("recover clean set file: err=%v rep=%+v", err, rep)
	}
	if rec.Len() != set.Len() {
		t.Fatalf("recovered %d of %d", rec.Len(), set.Len())
	}
}

// Sharded crash matrix: a subprocess writer overwriting a previous sharded
// snapshot is killed at every snapshot I/O injection point; the parent
// must always recover either the previous or the new image, never a mix,
// with per-shard Verify clean. This is the multiplexed-file analogue of
// internal/persist's TestCrashMatrix.

const (
	shardedCrashEnvPoint = "HOT_SHARDED_CRASH_POINT"
	shardedCrashEnvDir   = "HOT_SHARDED_CRASH_DIR"
	shardedCrashSeed     = 67
	shardedCrashPrev     = 1500
	shardedCrashNext     = 4000
	shardedCrashShards   = 4
	shardedCrashExit     = 3
)

func shardedCrashKeys() (*tidstore.Store, [][]byte) {
	keys := dataset.Generate(dataset.Integer, shardedCrashNext, shardedCrashSeed)
	s := &tidstore.Store{}
	for _, k := range keys {
		s.Add(k)
	}
	return s, keys
}

func buildShardedCrashTree(s *tidstore.Store, keys [][]byte, n int) *ShardedTree {
	// Boundaries from the FULL key set so prev and next images share the
	// same shard table.
	tr := NewShardedTree(s.Key, shardedCrashShards, keys)
	for i := 0; i < n; i++ {
		tr.Insert(keys[i], TID(i))
	}
	return tr
}

func shardedCrashChild(pointName, dir string) {
	var point chaos.Point
	found := false
	for _, p := range chaos.Points() {
		if p.String() == pointName {
			point, found = p, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown injection point %q\n", pointName)
		os.Exit(4)
	}
	store, keys := shardedCrashKeys()
	tr := buildShardedCrashTree(store, keys, shardedCrashNext)
	reg := chaos.New(shardedCrashSeed)
	reg.On(point, 1, chaos.Exit(shardedCrashExit))
	reg.Arm()
	err := tr.SnapshotFile(filepath.Join(dir, "sharded.hot"))
	chaos.Disarm()
	fmt.Fprintf(os.Stderr, "point %s never fired (save err: %v)\n", pointName, err)
	os.Exit(5)
}

func TestShardedCrashMatrix(t *testing.T) {
	if p := os.Getenv(shardedCrashEnvPoint); p != "" {
		shardedCrashChild(p, os.Getenv(shardedCrashEnvDir))
	}
	store, keys := shardedCrashKeys()
	points := []chaos.Point{
		chaos.SnapWriteHeader,
		chaos.SnapWriteBlock,
		chaos.SnapTornWrite,
		chaos.SnapSync,
		chaos.SnapRename,
		chaos.SnapDirSync,
	}
	for _, point := range points {
		point := point
		t.Run(point.String(), func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "sharded.hot")
			if err := buildShardedCrashTree(store, keys, shardedCrashPrev).SnapshotFile(path); err != nil {
				t.Fatal(err)
			}

			cmd := exec.Command(os.Args[0], "-test.run=^TestShardedCrashMatrix$")
			cmd.Env = append(os.Environ(),
				shardedCrashEnvPoint+"="+point.String(), shardedCrashEnvDir+"="+dir)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok || ee.ExitCode() != shardedCrashExit {
				t.Fatalf("writer did not crash at the point (err=%v):\n%s", err, out)
			}

			tr, err := LoadShardedTreeFile(path, store.Key)
			if err != nil {
				var rep RecoveryReport
				tr, rep, err = RecoverShardedTreeFile(path, store.Key)
				if err != nil {
					t.Fatalf("sharded snapshot unrecoverable after crash: %v", err)
				}
				t.Logf("strict load failed, salvaged %d entries (damage: %v)", rep.Entries, rep.Damage)
			}
			if err := tr.Verify(); err != nil {
				t.Fatalf("recovered sharded tree fails Verify: %v", err)
			}

			// Atomic protocol: the main path holds the previous image or
			// the complete new one.
			var wantN int
			switch tr.Len() {
			case shardedCrashPrev:
				wantN = shardedCrashPrev
			case shardedCrashNext:
				wantN = shardedCrashNext
			default:
				t.Fatalf("recovered %d entries, want %d or %d", tr.Len(), shardedCrashPrev, shardedCrashNext)
			}
			oracle := make([][]byte, wantN)
			copy(oracle, keys[:wantN])
			sort.Slice(oracle, func(i, j int) bool { return bytes.Compare(oracle[i], oracle[j]) < 0 })
			i := 0
			tr.Scan(nil, wantN, func(tid TID) bool {
				if i >= len(oracle) || !bytes.Equal(store.Key(tid, nil), oracle[i]) {
					t.Fatalf("entry %d diverges from the sorted oracle", i)
				}
				i++
				return true
			})
			if i != wantN {
				t.Fatalf("scan enumerated %d of %d oracle keys", i, wantN)
			}

			// Torn temp file: the manifest is written first, so salvage
			// either rejects the file outright (damage inside the
			// manifest) or hands back a verifiable prefix of the new
			// image.
			tmp := path + ".tmp"
			if _, statErr := os.Stat(tmp); statErr == nil {
				blob, rerr := os.ReadFile(tmp)
				if rerr != nil {
					t.Fatal(rerr)
				}
				ttmp := filepath.Join(dir, "torn-copy.hot")
				if err := os.WriteFile(ttmp, blob, 0o644); err != nil {
					t.Fatal(err)
				}
				rec, rep, rerr2 := RecoverShardedTreeFile(ttmp, store.Key)
				if rerr2 == nil {
					if err := rec.Verify(); err != nil {
						t.Fatalf("torn temp salvage fails Verify: %v", err)
					}
					t.Logf("torn temp file: salvaged %d/%d entries, complete=%v",
						rep.Entries, shardedCrashNext, rep.Complete)
				} else {
					t.Logf("torn temp file unsalvageable (manifest damage): %v", rerr2)
				}
			}
		})
	}
}

// TestShardedSnapshotSectionKindGuard hand-assembles a file whose manifest
// is valid but whose shard sections carry the wrong kind, which must be
// rejected with ErrWrongKind.
func TestShardedSnapshotSectionKindGuard(t *testing.T) {
	var buf bytes.Buffer
	mw, err := persist.NewWriter(&buf, persist.KindShardManifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.WriteEntry([]byte{0x80}, 0); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		sw, err := persist.NewWriter(&buf, persist.KindMap) // wrong kind
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	s := &tidstore.Store{}
	if _, err := LoadShardedTree(bytes.NewReader(buf.Bytes()), s.Key); err == nil {
		t.Fatal("wrong section kind accepted")
	} else if se, ok := err.(*SnapshotError); !ok || se.Kind != SnapErrWrongKind {
		t.Fatalf("want ErrWrongKind, got %v", err)
	}
}
