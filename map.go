package hot

import (
	"fmt"

	"github.com/hotindex/hot/internal/core"
)

// Map is an ordered map from arbitrary []byte keys to uint64 values backed
// by a Height Optimized Trie. Unlike Tree it needs no external tuple
// store: keys are kept in an internal append-only arena, and an
// order-preserving escape (0x00 → 0x00 0xFF, terminated by 0x00 0x01)
// makes arbitrary keys prefix-free, so keys may contain any bytes
// including 0x00.
//
// Deleted keys' arena space is not reclaimed (append-only storage); Map is
// intended for index-style workloads where inserts dominate. Map is not
// safe for concurrent use. Because the escape can double a key's length,
// Map keys are limited to MaxMapKeyLen bytes.
type Map struct {
	statsBase // shared Len/Height/Memory/Verify surface (key arena not included in Memory)
	codecOpt
	t    *core.Trie
	keys arena
	vals []uint64
	buf  []byte

	// LookupBatch scratch: escaped keys back to back in bflat, delimited
	// by boffs, resliced into bkeys; btids receives the trie's TIDs.
	bflat []byte
	boffs []int
	bkeys [][]byte
	btids []uint64
}

// arena stores encoded keys back to back.
type arena struct {
	data []byte
	offs []uint64 // offset<<16 | length
}

func (a *arena) add(k []byte) uint64 {
	off := uint64(len(a.data))
	a.data = append(a.data, k...)
	a.offs = append(a.offs, off<<16|uint64(len(k)))
	return uint64(len(a.offs) - 1)
}

func (a *arena) key(id uint64) []byte {
	e := a.offs[id]
	off, n := e>>16, e&0xFFFF
	return a.data[off : off+n]
}

// MaxMapKeyLen is the maximum Map key length in bytes: the worst-case
// escape (every byte a zero) doubles the key and adds a two-byte
// terminator, which must still fit in MaxKeyLen.
const MaxMapKeyLen = (MaxKeyLen - 2) / 2

// NewMap returns an empty Map.
func NewMap() *Map {
	m := &Map{vals: make([]uint64, 0, 16), buf: make([]byte, 0, 64)}
	m.t = core.New(func(tid core.TID, _ []byte) []byte { return m.keys.key(tid) })
	m.statsBase = statsBase{m.t}
	return m
}

// escapeKey appends the order-preserving, prefix-free encoding of k to dst.
// It panics when len(k) > MaxMapKeyLen.
func escapeKey(dst, k []byte) []byte {
	if len(k) > MaxMapKeyLen {
		panic(fmt.Sprintf("hot: Map key length %d exceeds MaxMapKeyLen %d", len(k), MaxMapKeyLen))
	}
	for _, b := range k {
		if b == 0x00 {
			dst = append(dst, 0x00, 0xFF)
			continue
		}
		dst = append(dst, b)
	}
	return append(dst, 0x00, 0x01)
}

// Set stores val under key, replacing any existing value. It reports
// whether the key was newly inserted.
func (m *Map) Set(key []byte, val uint64) bool {
	ek := escapeKey(m.buf[:0], key)
	m.buf = ek[:0]
	if tid, ok := m.t.Lookup(ek); ok {
		m.vals[tid] = val
		return false
	}
	tid := m.keys.add(ek)
	m.vals = append(m.vals, val)
	m.t.Insert(ek, tid)
	return true
}

// Get returns the value stored under key.
func (m *Map) Get(key []byte) (uint64, bool) {
	ek := escapeKey(m.buf[:0], key)
	m.buf = ek[:0]
	tid, ok := m.t.Lookup(ek)
	if !ok {
		return 0, false
	}
	return m.vals[tid], true
}

// LookupBatch looks up all keys as one batch, storing each key's value in
// the corresponding out slot (0 when absent) and returning a mask of which
// keys were found; len(out) must be at least len(keys). The underlying
// batched descent overlaps the trie's memory stalls across keys (see
// Tree.LookupBatch); steady-state calls allocate nothing. The returned mask
// is scratch owned by the map, valid until the next LookupBatch call.
func (m *Map) LookupBatch(keys [][]byte, out []uint64) []bool {
	n := len(keys)
	if len(out) < n {
		panic("hot: LookupBatch out slice shorter than keys")
	}
	// Escape every key into the flat scratch arena first; subslices are
	// built only afterwards, since appends may move the backing array.
	m.bflat = m.bflat[:0]
	m.boffs = append(m.boffs[:0], 0)
	for _, k := range keys {
		m.bflat = escapeKey(m.bflat, k)
		m.boffs = append(m.boffs, len(m.bflat))
	}
	m.bkeys = m.bkeys[:0]
	for i := 0; i < n; i++ {
		m.bkeys = append(m.bkeys, m.bflat[m.boffs[i]:m.boffs[i+1]])
	}
	if cap(m.btids) < n {
		m.btids = make([]uint64, n)
	}
	m.btids = m.btids[:n]
	found := m.t.LookupBatch(m.bkeys, m.btids)
	for i := 0; i < n; i++ {
		if found[i] {
			out[i] = m.vals[m.btids[i]]
		} else {
			out[i] = 0
		}
	}
	return found
}

// Delete removes key, reporting whether it was present.
func (m *Map) Delete(key []byte) bool {
	ek := escapeKey(m.buf[:0], key)
	m.buf = ek[:0]
	return m.t.Delete(ek)
}

// Range invokes fn for up to max entries with key ≥ start in ascending key
// order (nil start ranges from the smallest key; max < 0 means unbounded).
// The key slice passed to fn is only valid during the call; fn must not
// modify the map.
func (m *Map) Range(start []byte, max int, fn func(key []byte, val uint64) bool) int {
	var es []byte
	if start != nil {
		es = escapeKey(nil, start)
	}
	if max < 0 {
		max = m.t.Len()
	}
	var dec []byte
	return m.t.Scan(es, max, func(tid core.TID) bool {
		dec = unescapeKey(dec[:0], m.keys.key(tid))
		return fn(dec, m.vals[tid])
	})
}

// unescapeKey reverses escapeKey.
func unescapeKey(dst, ek []byte) []byte {
	for i := 0; i < len(ek); i++ {
		b := ek[i]
		if b != 0x00 {
			dst = append(dst, b)
			continue
		}
		i++
		if i >= len(ek) || ek[i] == 0x01 {
			break // terminator
		}
		dst = append(dst, 0x00) // escaped zero (0x00 0xFF)
	}
	return dst
}
