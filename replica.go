package hot

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hotindex/hot/internal/wire"
)

// ReplicaOptions tunes a ReplicaClient's reconnect loop.
type ReplicaOptions struct {
	// DialTimeout bounds each connection attempt to the leader (default
	// 10s; negative disables the bound).
	DialTimeout time.Duration
	// ReadTimeout is the per-read deadline on an established stream: the
	// leader pings an idle tail about once a second, so a read that sees
	// nothing for this long means the connection is dead, not quiet.
	// Default 15s; negative disables it.
	ReadTimeout time.Duration
	// MinBackoff and MaxBackoff bound the capped exponential reconnect
	// backoff (defaults 50ms and 5s). Each failed attempt doubles the
	// delay up to MaxBackoff, with up to 50% random jitter added so a
	// fleet of followers does not reconnect in lockstep.
	MinBackoff time.Duration
	MaxBackoff time.Duration
}

func (o *ReplicaOptions) defaults() {
	if o.DialTimeout == 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 15 * time.Second
	}
	if o.MinBackoff <= 0 {
		o.MinBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff < o.MinBackoff {
		o.MaxBackoff = 5 * time.Second
		if o.MaxBackoff < o.MinBackoff {
			o.MaxBackoff = o.MinBackoff
		}
	}
}

// ReplicaClient keeps one Follower fed from a leader across connection
// failures. It dials, requests replication, and consumes the stream; when
// the connection dies it reconnects with capped exponential backoff and
// jitter, offering the follower's applied-LSN frontier so the leader can
// resume the tail instead of re-streaming the snapshot. The follower keeps
// serving reads from its ready prefix the whole time — a partition costs
// write freshness, never read availability.
//
// The resume offer degrades conservatively: it is only made once a
// bootstrap has fully completed, and any error that suggests the streams
// disagree about state (a protocol or apply error, as opposed to a clean
// transport failure) forces the next attempt to request a full bootstrap.
type ReplicaClient struct {
	addr string
	opts ReplicaOptions
	fol  *Follower

	stop chan struct{}
	done chan struct{}

	mu   sync.Mutex // guards conn
	conn net.Conn

	closed     atomic.Bool
	connected  atomic.Bool
	reconnects atomic.Uint64
	lastErr    atomic.Pointer[error]
}

// NewReplicaClient starts a replication client feeding a new Follower
// (loader and onEntry as in NewFollower) from the leader at addr. The
// reconnect loop runs until Close; use Follower() for reads and the
// counters to observe its behavior.
func NewReplicaClient(addr string, loader Loader, onEntry func(key []byte, tid TID) error, opts ReplicaOptions) *ReplicaClient {
	opts.defaults()
	rc := &ReplicaClient{
		addr: addr,
		opts: opts,
		fol:  NewFollower(loader, onEntry),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go rc.run()
	return rc
}

// Follower returns the follower this client feeds. Its read methods are
// safe at any time; AppliedLSNs is reserved for the client itself.
func (rc *ReplicaClient) Follower() *Follower { return rc.fol }

// Connected reports whether a replication stream is currently established.
func (rc *ReplicaClient) Connected() bool { return rc.connected.Load() }

// Reconnects counts successful connections after the first.
func (rc *ReplicaClient) Reconnects() uint64 { return rc.reconnects.Load() }

// Resumes counts streams the leader continued from our applied frontier.
func (rc *ReplicaClient) Resumes() uint64 { return rc.fol.Resumes() }

// FullResyncs counts complete re-bootstraps after the initial one — each
// is a reconnect whose resume offer the leader declined (or that could not
// offer one).
func (rc *ReplicaClient) FullResyncs() uint64 {
	if b := rc.fol.Bootstraps(); b > 1 {
		return b - 1
	}
	return 0
}

// LastErr returns the most recent connection or feed error, nil while the
// stream is healthy. It is diagnostic: the client keeps retrying either
// way.
func (rc *ReplicaClient) LastErr() error {
	if p := rc.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Close stops the reconnect loop, severs any live connection, and waits
// for the feeder to exit. The follower remains readable. Idempotent.
func (rc *ReplicaClient) Close() error {
	if rc.closed.Swap(true) {
		return nil
	}
	close(rc.stop)
	rc.mu.Lock()
	if rc.conn != nil {
		rc.conn.Close()
	}
	rc.mu.Unlock()
	<-rc.done
	return nil
}

// setConn records the live connection so Close can sever it. It returns
// false when the client is already closing (the caller must not use conn).
func (rc *ReplicaClient) setConn(conn net.Conn) bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	select {
	case <-rc.stop:
		return false
	default:
	}
	rc.conn = conn
	return true
}

// run is the reconnect loop: dial, request replication (resuming when the
// follower has a complete bootstrap), feed until the stream dies, classify
// the failure, back off, repeat.
func (rc *ReplicaClient) run() {
	defer close(rc.done)
	backoff := rc.opts.MinBackoff
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	connections := uint64(0)
	forceFull := false
	for {
		select {
		case <-rc.stop:
			return
		default:
		}
		established, err := rc.attempt(&connections, &forceFull)
		if established {
			// A stream ran; whatever killed it, start the ladder over.
			backoff = rc.opts.MinBackoff
		}
		if err != nil {
			rc.lastErr.Store(&err)
		}
		delay := backoff + time.Duration(rng.Int63n(int64(backoff)/2+1))
		if backoff *= 2; backoff > rc.opts.MaxBackoff {
			backoff = rc.opts.MaxBackoff
		}
		select {
		case <-rc.stop:
			return
		case <-time.After(delay):
		}
	}
}

// attempt runs one connection's whole life, reporting whether a stream was
// established. connections counts successful dials (for the reconnect
// counter); forceFull carries the full-bootstrap demand across attempts.
func (rc *ReplicaClient) attempt(connections *uint64, forceFull *bool) (established bool, err error) {
	d := net.Dialer{}
	if rc.opts.DialTimeout > 0 {
		d.Timeout = rc.opts.DialTimeout
	}
	conn, err := d.Dial("tcp", rc.addr)
	if err != nil {
		return false, err
	}
	if !rc.setConn(conn) {
		conn.Close()
		return false, nil
	}
	defer func() {
		rc.connected.Store(false)
		conn.Close()
	}()

	// Offer a resume only from a complete bootstrap, and only when the
	// previous stream did not end in a state-divergence error.
	var req []byte
	op := wire.OpRepl
	if !*forceFull {
		if lsns := rc.fol.AppliedLSNs(); lsns != nil {
			op = wire.OpReplResume
			req = wire.AppendResume(nil, lsns)
		}
	}
	if err := wire.WriteFrame(conn, op, req); err != nil {
		return false, err
	}

	*connections++
	if *connections > 1 {
		rc.reconnects.Add(1)
	}
	rc.connected.Store(true)
	rc.lastErr.Store(nil)

	var src io.Reader = conn
	if rc.opts.ReadTimeout > 0 {
		src = &deadlineReader{conn: conn, timeout: rc.opts.ReadTimeout}
	}
	err = rc.fol.Feed(src)
	if err == nil {
		*forceFull = false
		return true, nil
	}
	// Transport failures leave the follower's applied state coherent —
	// resume next time. Anything else (a protocol violation, an LSN gap,
	// an apply error) means the stream and our state disagree; only a
	// fresh bootstrap is trustworthy after that.
	*forceFull = !transientFeedErr(err)
	return true, err
}

// transientFeedErr reports whether err is a pure transport failure — the
// class after which the follower's applied frontier is still trustworthy
// and a resume is safe.
func transientFeedErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// deadlineReader arms conn's read deadline before every Read, so a stream
// that goes silent past the leader's ping interval fails instead of
// blocking forever.
type deadlineReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (d *deadlineReader) Read(p []byte) (int, error) {
	d.conn.SetReadDeadline(time.Now().Add(d.timeout))
	return d.conn.Read(p)
}
