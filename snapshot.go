package hot

import (
	"fmt"
	"io"
	"sync/atomic"

	"github.com/hotindex/hot/internal/core"
	"github.com/hotindex/hot/internal/persist"
)

// Snapshot persistence: every index type can save a versioned, checksummed
// binary snapshot (internal/persist format: magic + header, per-block
// CRC32, trailer with the authoritative entry count) and load it back.
// SaveFile variants are crash-safe — temp file, fsync, atomic rename,
// directory fsync — so a crash mid-save leaves the previous snapshot
// intact. Load variants validate everything (checksums, key order, entry
// counts) and return typed *SnapshotError values with exact byte offsets;
// Recover variants additionally salvage the longest valid prefix of a
// damaged file.

// SnapshotError is the typed error the snapshot loaders return for a
// damaged or incompatible file: the damage kind, the exact byte offset of
// the damaged unit, and a description.
type SnapshotError = persist.FormatError

// SnapshotErrKind classifies a SnapshotError.
type SnapshotErrKind = persist.ErrKind

// SnapshotError kinds.
const (
	// SnapErrBadMagic: the file is not a HOT snapshot.
	SnapErrBadMagic = persist.ErrBadMagic
	// SnapErrVersionSkew: the snapshot was written by an incompatible
	// format version.
	SnapErrVersionSkew = persist.ErrVersionSkew
	// SnapErrWrongKind: the snapshot holds a different index type (e.g. a
	// Map snapshot loaded as a Uint64Set).
	SnapErrWrongKind = persist.ErrWrongKind
	// SnapErrTruncated: the file ends mid-structure (torn tail).
	SnapErrTruncated = persist.ErrTruncated
	// SnapErrChecksum: a block or trailer checksum mismatch (bit rot).
	SnapErrChecksum = persist.ErrChecksum
	// SnapErrCorrupt: structurally invalid contents despite clean
	// checksums (out-of-order keys, bad lengths, count mismatch).
	SnapErrCorrupt = persist.ErrCorrupt
	// SnapErrUnsupportedCodec: a block is stored with a payload codec this
	// build does not decode — a snapshot from a newer build, not damage.
	// Reported from the codec byte alone, never as a checksum mismatch.
	SnapErrUnsupportedCodec = persist.ErrUnsupportedCodec
)

// SnapshotCodec selects how snapshot blocks are encoded on disk.
type SnapshotCodec = persist.Codec

const (
	// SnapshotCodecRaw stores block payloads verbatim — the default, and
	// byte-identical to snapshots written before codecs existed.
	SnapshotCodecRaw = persist.CodecRaw
	// SnapshotCodecPacked delta-compresses each block's sorted key stream
	// and bit-packs its TIDs, falling back to raw storage for any block the
	// packing would not shrink. Files remain loadable by any reader that
	// knows the codec; readers that do not reject them with a typed
	// SnapErrUnsupportedCodec error.
	SnapshotCodecPacked = persist.CodecPacked
)

// ParseSnapshotCodec parses a codec name ("raw" or "packed"), rejecting
// anything else with an error naming the valid options.
func ParseSnapshotCodec(s string) (SnapshotCodec, error) { return persist.ParseCodec(s) }

// codecOpt carries an index's snapshot codec selection. Every index type
// embeds it; the sharded set delegates to its underlying tree. Atomic so a
// configuration call cannot race a concurrent snapshot.
type codecOpt struct{ codec atomic.Uint32 }

// SetSnapshotCodec selects the block codec used by this index's subsequent
// Save/Snapshot/checkpoint writes. The default is SnapshotCodecRaw; the
// choice affects only files written from now on — every reader accepts
// both codecs regardless of this setting.
func (c *codecOpt) SetSnapshotCodec(codec SnapshotCodec) { c.codec.Store(uint32(codec)) }

// SnapshotCodec returns the codec subsequent snapshot writes will use.
func (c *codecOpt) SnapshotCodec() SnapshotCodec { return SnapshotCodec(c.codec.Load()) }

// RecoveryReport describes what a Recover* loader salvaged: how many
// entries were delivered from the valid prefix, whether the snapshot was in
// fact complete, and the first damage found (nil when complete).
type RecoveryReport = persist.RecoveryReport

// ---- Tree ----

// Save writes a snapshot of the tree — every (key, TID) entry in ascending
// key order, keys resolved through the loader — to w. Use SaveFile for
// crash-safe on-disk snapshots.
func (t *Tree) Save(w io.Writer) error {
	sw, err := persist.NewWriter(w, persist.KindTree)
	if err != nil {
		return err
	}
	sw.SetCodec(t.SnapshotCodec())
	if err := writeWalk(sw, t.t.Walk); err != nil {
		return err
	}
	return sw.Close()
}

// SaveFile atomically writes a snapshot of the tree to path: the stream
// goes to path+".tmp", is fsynced, renamed over path, and the directory is
// fsynced. On any error path is left untouched.
func (t *Tree) SaveFile(path string) error {
	return persist.SaveFile(path, persist.KindTree, func(sw *persist.Writer) error {
		sw.SetCodec(t.SnapshotCodec())
		return writeWalk(sw, t.t.Walk)
	})
}

// SaveIndexedFile is SaveFile with the sparse per-block key index
// appended after the trailer, so the snapshot can later serve point
// lookups directly from disk (via the cold tier's page cache) without
// being loaded. The file remains fully readable by LoadTreeFile and
// older readers, which stop at the trailer.
func (t *Tree) SaveIndexedFile(path string) error {
	return persist.SaveIndexedFile(path, persist.KindTree, func(sw *persist.Writer) error {
		sw.SetCodec(t.SnapshotCodec())
		return writeWalk(sw, t.t.Walk)
	})
}

// LoadTree rebuilds a Tree from a snapshot, validating checksums, key
// order and prefix-freeness as it streams entries, and returns a typed
// *SnapshotError (with the byte offset of the damage) on any corruption.
// The loader must resolve every TID stored in the snapshot, exactly as it
// did when the snapshot was saved.
func LoadTree(r io.Reader, loader Loader) (*Tree, error) {
	t := New(loader)
	if _, err := persist.Read(r, persist.KindTree, t.loadEntry); err != nil {
		return nil, err
	}
	return t, nil
}

// LoadTreeFile is LoadTree over the file at path.
func LoadTreeFile(path string, loader Loader) (*Tree, error) {
	t := New(loader)
	if _, err := persist.ReadFile(path, persist.KindTree, t.loadEntry); err != nil {
		return nil, err
	}
	return t, nil
}

// RecoverTreeFile rebuilds a Tree from the longest valid prefix of a
// possibly damaged snapshot. The report says how much was salvaged and what
// damage stopped the read; the error is non-nil only when nothing could be
// loaded at all (unreadable file, or not a tree snapshot).
func RecoverTreeFile(path string, loader Loader) (*Tree, RecoveryReport, error) {
	t := New(loader)
	rep, err := persist.RecoverFile(path, persist.KindTree, t.loadEntry)
	if err != nil {
		return nil, rep, err
	}
	return t, rep, nil
}

// loadEntry inserts one snapshot entry, converting insertion rejections
// (duplicate keys under zero-padding, i.e. a non-prefix-free key set) into
// typed corruption errors instead of building a silently wrong tree.
func (t *Tree) loadEntry(key []byte, tid TID) error {
	if !t.t.Insert(key, tid) {
		return &SnapshotError{Kind: persist.ErrCorrupt,
			Detail: fmt.Sprintf("key %q not prefix-free under zero-padding", key)}
	}
	return nil
}

// writeWalk streams a trie walk into a snapshot writer, surfacing writer
// errors (the walk callback cannot return one).
func writeWalk(sw *persist.Writer, walk func(func(key []byte, tid core.TID) bool) int) error {
	var werr error
	walk(func(key []byte, tid core.TID) bool {
		werr = sw.WriteEntry(key, tid)
		return werr == nil
	})
	return werr
}

// ---- ConcurrentTree ----

// Snapshot writes a point-in-time snapshot of the live tree to w without
// blocking concurrent writers: the walk pins the current root under a
// single epoch guard, so writers proceed copy-on-write (their retired
// nodes are simply not reclaimed until the snapshot finishes). Entries
// committed while the snapshot streams may or may not be included, exactly
// like the paper's wait-free scans; what is included is always a
// structurally consistent ascending key sequence.
func (t *ConcurrentTree) Snapshot(w io.Writer) error {
	sw, err := persist.NewWriter(w, persist.KindTree)
	if err != nil {
		return err
	}
	sw.SetCodec(t.SnapshotCodec())
	if err := writeWalk(sw, t.t.SnapshotWalk); err != nil {
		return err
	}
	return sw.Close()
}

// SnapshotFile atomically writes a point-in-time snapshot of the live tree
// to path (see Snapshot for the concurrency semantics and SaveFile for the
// durability protocol).
func (t *ConcurrentTree) SnapshotFile(path string) error {
	return persist.SaveFile(path, persist.KindTree, func(sw *persist.Writer) error {
		sw.SetCodec(t.SnapshotCodec())
		return writeWalk(sw, t.t.SnapshotWalk)
	})
}

// LoadConcurrentTree rebuilds a ConcurrentTree from a snapshot (see
// LoadTree; the load itself is single-threaded).
func LoadConcurrentTree(r io.Reader, loader Loader) (*ConcurrentTree, error) {
	t := NewConcurrent(loader)
	_, err := persist.Read(r, persist.KindTree, func(key []byte, tid TID) error {
		if !t.t.Insert(key, tid) {
			return &SnapshotError{Kind: persist.ErrCorrupt,
				Detail: fmt.Sprintf("key %q not prefix-free under zero-padding", key)}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ---- Map ----

// Save writes a snapshot of the map — every (key, value) pair in ascending
// key order, keys in their original (unescaped) bytes — to w.
func (m *Map) Save(w io.Writer) error {
	sw, err := persist.NewWriter(w, persist.KindMap)
	if err != nil {
		return err
	}
	sw.SetCodec(m.SnapshotCodec())
	if err := m.writeEntries(sw); err != nil {
		return err
	}
	return sw.Close()
}

// SaveFile atomically writes a snapshot of the map to path (see
// Tree.SaveFile for the durability protocol).
func (m *Map) SaveFile(path string) error {
	return persist.SaveFile(path, persist.KindMap, func(sw *persist.Writer) error {
		sw.SetCodec(m.SnapshotCodec())
		return m.writeEntries(sw)
	})
}

func (m *Map) writeEntries(sw *persist.Writer) error {
	var werr error
	m.Range(nil, -1, func(key []byte, val uint64) bool {
		werr = sw.WriteEntry(key, val)
		return werr == nil
	})
	return werr
}

// LoadMap rebuilds a Map from a snapshot, returning a typed
// *SnapshotError on any corruption.
func LoadMap(r io.Reader) (*Map, error) {
	m := NewMap()
	if _, err := persist.Read(r, persist.KindMap, m.loadEntry); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadMapFile is LoadMap over the file at path.
func LoadMapFile(path string) (*Map, error) {
	m := NewMap()
	if _, err := persist.ReadFile(path, persist.KindMap, m.loadEntry); err != nil {
		return nil, err
	}
	return m, nil
}

// RecoverMapFile rebuilds a Map from the longest valid prefix of a
// possibly damaged snapshot (see RecoverTreeFile).
func RecoverMapFile(path string) (*Map, RecoveryReport, error) {
	m := NewMap()
	rep, err := persist.RecoverFile(path, persist.KindMap, m.loadEntry)
	if err != nil {
		return nil, rep, err
	}
	return m, rep, nil
}

func (m *Map) loadEntry(key []byte, val uint64) error {
	if len(key) > MaxMapKeyLen {
		return &SnapshotError{Kind: persist.ErrCorrupt,
			Detail: fmt.Sprintf("map key length %d exceeds MaxMapKeyLen %d", len(key), MaxMapKeyLen)}
	}
	if !m.Set(key, val) {
		return &SnapshotError{Kind: persist.ErrCorrupt,
			Detail: fmt.Sprintf("duplicate map key %q", key)}
	}
	return nil
}

// ---- Uint64Set ----

// Save writes a snapshot of the set — every value as its 8-byte big-endian
// key with the value embedded as the TID — to w.
func (s *Uint64Set) Save(w io.Writer) error {
	sw, err := persist.NewWriter(w, persist.KindUint64Set)
	if err != nil {
		return err
	}
	sw.SetCodec(s.SnapshotCodec())
	if err := writeWalk(sw, s.t.Walk); err != nil {
		return err
	}
	return sw.Close()
}

// SaveFile atomically writes a snapshot of the set to path (see
// Tree.SaveFile for the durability protocol).
func (s *Uint64Set) SaveFile(path string) error {
	return persist.SaveFile(path, persist.KindUint64Set, func(sw *persist.Writer) error {
		sw.SetCodec(s.SnapshotCodec())
		return writeWalk(sw, s.t.Walk)
	})
}

// LoadUint64Set rebuilds a Uint64Set from a snapshot, returning a typed
// *SnapshotError on any corruption.
func LoadUint64Set(r io.Reader) (*Uint64Set, error) {
	s := NewUint64Set()
	if _, err := persist.Read(r, persist.KindUint64Set, s.loadEntry); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadUint64SetFile is LoadUint64Set over the file at path.
func LoadUint64SetFile(path string) (*Uint64Set, error) {
	s := NewUint64Set()
	if _, err := persist.ReadFile(path, persist.KindUint64Set, s.loadEntry); err != nil {
		return nil, err
	}
	return s, nil
}

// RecoverUint64SetFile rebuilds a Uint64Set from the longest valid prefix
// of a possibly damaged snapshot (see RecoverTreeFile).
func RecoverUint64SetFile(path string) (*Uint64Set, RecoveryReport, error) {
	s := NewUint64Set()
	rep, err := persist.RecoverFile(path, persist.KindUint64Set, s.loadEntry)
	if err != nil {
		return nil, rep, err
	}
	return s, rep, nil
}

// loadEntry validates the embedded-key convention — the 8-byte big-endian
// key must decode to exactly the stored TID — before inserting.
func (s *Uint64Set) loadEntry(key []byte, tid TID) error {
	if len(key) != 8 {
		return &SnapshotError{Kind: persist.ErrCorrupt,
			Detail: fmt.Sprintf("set key length %d, want 8", len(key))}
	}
	var v uint64
	for _, b := range key {
		v = v<<8 | uint64(b)
	}
	if v != tid {
		return &SnapshotError{Kind: persist.ErrCorrupt,
			Detail: fmt.Sprintf("set key decodes to %d, TID is %d", v, tid)}
	}
	if !s.Insert(v) {
		return &SnapshotError{Kind: persist.ErrCorrupt,
			Detail: fmt.Sprintf("duplicate set value %d", v)}
	}
	return nil
}

// ---- ConcurrentUint64Set ----

// Snapshot writes a point-in-time snapshot of the live set to w without
// blocking concurrent writers (see ConcurrentTree.Snapshot for the
// semantics).
func (s *ConcurrentUint64Set) Snapshot(w io.Writer) error {
	sw, err := persist.NewWriter(w, persist.KindUint64Set)
	if err != nil {
		return err
	}
	sw.SetCodec(s.SnapshotCodec())
	if err := writeWalk(sw, s.t.SnapshotWalk); err != nil {
		return err
	}
	return sw.Close()
}

// SnapshotFile atomically writes a point-in-time snapshot of the live set
// to path (see ConcurrentTree.SnapshotFile).
func (s *ConcurrentUint64Set) SnapshotFile(path string) error {
	return persist.SaveFile(path, persist.KindUint64Set, func(sw *persist.Writer) error {
		sw.SetCodec(s.SnapshotCodec())
		return writeWalk(sw, s.t.SnapshotWalk)
	})
}
