package hot

import (
	"bytes"
	"errors"
	"testing"

	"github.com/hotindex/hot/internal/dataset"
	"github.com/hotindex/hot/internal/tidstore"
	"github.com/hotindex/hot/internal/wire"
)

// recordingSink captures a replication stream and the cumulative byte
// offset at every transport flush — the true section boundaries a
// follower on a real socket could observe.
type recordingSink struct {
	buf       bytes.Buffer
	flushOffs []int
}

func (r *recordingSink) Write(p []byte) (int, error) { return r.buf.Write(p) }

func (r *recordingSink) Flush() error {
	if n := r.buf.Len(); len(r.flushOffs) == 0 || r.flushOffs[len(r.flushOffs)-1] != n {
		r.flushOffs = append(r.flushOffs, n)
	}
	return nil
}

// TestReplicationStreamPrefixes is the core follower guarantee, checked
// deterministically: for EVERY prefix of the bootstrap stream, a follower
// fed exactly that prefix serves precisely the shards whose sections were
// fully flushed — Verify-clean, with correct lookups — and refuses reads
// beyond the frontier with ErrNotReady. The readable prefix grows strictly
// section by section.
func TestReplicationStreamPrefixes(t *testing.T) {
	dir := t.TempDir()
	keys := dataset.Generate(dataset.Integer, 2000, 7)
	store := &tidstore.Store{}
	for _, k := range keys {
		store.Add(k)
	}
	tr, _, err := OpenDurableShardedTree(dir, store.Key, 4, keys, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i, k := range keys {
		if !tr.Insert(k, TID(i)) {
			t.Fatalf("insert %d rejected", i)
		}
	}

	rec := &recordingSink{}
	sess, err := tr.NewReplicationSession(rec)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop) // snapshot + exactly one (empty) tail pass
	if err := sess.Run(stop); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	full := rec.buf.Bytes()
	// Flush points: manifest, one per shard section, tail start.
	if len(rec.flushOffs) != 6 {
		t.Fatalf("got %d flush points %v, want 6", len(rec.flushOffs), rec.flushOffs)
	}
	offs := rec.flushOffs
	bootstrapEnd := offs[5]

	shardOf := func(k []byte) int { return tr.Shard(k) }
	wantLen := make([]int, 5)
	for i := 0; i < 4; i++ {
		wantLen[i+1] = wantLen[i] + tr.ShardLen(i)
	}

	// Every flush offset plus a point strictly inside each span between
	// them: complete sections must open, incomplete ones must not.
	var prefixes []int
	prev := 0
	for _, o := range offs {
		if mid := (prev + o) / 2; mid > prev {
			prefixes = append(prefixes, mid)
		}
		prefixes = append(prefixes, o)
		prev = o
	}
	lastReady := 0
	for _, p := range prefixes {
		fol := NewFollower(store.Key, nil)
		err := fol.Feed(bytes.NewReader(full[:p]))
		if p >= bootstrapEnd {
			if err != nil {
				t.Fatalf("prefix %d (complete bootstrap): Feed = %v", p, err)
			}
		} else if err == nil {
			t.Fatalf("prefix %d (truncated bootstrap): Feed returned nil", p)
		}
		wantReady := 0
		for i := 0; i < 4; i++ {
			if p >= offs[i+1] {
				wantReady = i + 1
			}
		}
		ready := fol.Ready()
		if ready != wantReady {
			t.Fatalf("prefix %d: Ready = %d, want %d", p, ready, wantReady)
		}
		if ready < lastReady {
			t.Fatalf("prefix %d: readable prefix shrank %d -> %d", p, lastReady, ready)
		}
		lastReady = ready
		if err := fol.Verify(); err != nil {
			t.Fatalf("prefix %d: %v", p, err)
		}
		if got := fol.Len(); got != wantLen[ready] {
			t.Fatalf("prefix %d: Len = %d, want %d", p, got, wantLen[ready])
		}
		for i, k := range keys {
			s := shardOf(k)
			tid, found, lerr := fol.Lookup(k)
			if s < ready {
				if lerr != nil || !found || tid != TID(i) {
					t.Fatalf("prefix %d: ready-shard key %d = (%d, %v, %v)", p, i, tid, found, lerr)
				}
			} else if !errors.Is(lerr, ErrNotReady) {
				t.Fatalf("prefix %d: key %d in shard %d (ready %d): err = %v, want ErrNotReady", p, i, s, ready, lerr)
			}
		}
	}
}

// TestReplicationTailCatchUp streams a bootstrap, then writes (and
// deletes) on the leader AFTER the per-shard cuts were taken, and checks a
// single deterministic tail pass ships exactly the post-cut records: the
// follower converges to the leader's final state, counting every tail
// record it applied.
func TestReplicationTailCatchUp(t *testing.T) {
	dir := t.TempDir()
	keys := dataset.Generate(dataset.Integer, 2000, 11)
	store := &tidstore.Store{}
	for _, k := range keys {
		store.Add(k)
	}
	tr, _, err := OpenDurableShardedTree(dir, store.Key, 4, keys, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i, k := range keys[:1000] {
		tr.Insert(k, TID(i))
	}

	rec := &recordingSink{}
	sess, err := tr.NewReplicationSession(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.StreamSnapshot(); err != nil {
		t.Fatal(err)
	}
	// Every write from here on postdates the cuts, so it must arrive via
	// the tail, not the sections. Synchronous writes are durable (and
	// tailer-visible) when they return.
	for i, k := range keys[1000:] {
		tr.Insert(k, TID(1000+i))
	}
	for _, k := range keys[:10] {
		tr.Delete(k)
	}
	stop := make(chan struct{})
	close(stop)
	if err := sess.StreamTail(stop); err != nil {
		t.Fatal(err)
	}
	sess.Close()

	fol := NewFollower(store.Key, nil)
	if err := fol.Feed(bytes.NewReader(rec.buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fol.Ready() != 4 {
		t.Fatalf("Ready = %d, want 4", fol.Ready())
	}
	if got := fol.TailRecords(); got != 1010 {
		t.Fatalf("TailRecords = %d, want 1010", got)
	}
	if err := fol.Verify(); err != nil {
		t.Fatal(err)
	}
	if got, want := fol.Len(), tr.Len(); got != want {
		t.Fatalf("Len = %d, leader has %d", got, want)
	}
	for i, k := range keys {
		tid, found, lerr := fol.Lookup(k)
		if lerr != nil {
			t.Fatal(lerr)
		}
		if i < 10 {
			if found {
				t.Fatalf("deleted key %d visible on follower", i)
			}
		} else if !found || tid != TID(i) {
			t.Fatalf("key %d = (%d, %v)", i, tid, found)
		}
	}

	// Scans serve the ready prefix in global key order.
	n, err := fol.Scan(nil, 50, func(key []byte, tid TID) bool { return true })
	if err != nil || n != 50 {
		t.Fatalf("Scan = (%d, %v)", n, err)
	}
}

// TestReplicationResumeTail is the LSN-resume contract, deterministically:
// a follower that completed a bootstrap reconnects by offering its applied
// frontier, and the leader — whose logs still retain everything past it —
// continues the tail with no snapshot phase. The follower converges to the
// leader's post-disconnect state, counting the stream as a resume, not a
// bootstrap.
func TestReplicationResumeTail(t *testing.T) {
	dir := t.TempDir()
	keys := dataset.Generate(dataset.Integer, 2000, 13)
	store := &tidstore.Store{}
	for _, k := range keys {
		store.Add(k)
	}
	tr, _, err := OpenDurableShardedTree(dir, store.Key, 4, keys, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i, k := range keys[:1000] {
		tr.Insert(k, TID(i))
	}

	// Session 1: full bootstrap, then the stream "dies" (drain-once tail).
	rec := &recordingSink{}
	sess, err := tr.NewReplicationSession(rec)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	if err := sess.Run(stop); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	fol := NewFollower(store.Key, nil)
	if err := fol.Feed(bytes.NewReader(rec.buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if !fol.Bootstrapped() || fol.Bootstraps() != 1 {
		t.Fatalf("after bootstrap: Bootstrapped=%v Bootstraps=%d", fol.Bootstrapped(), fol.Bootstraps())
	}

	// The leader moves on while the follower is disconnected.
	for i, k := range keys[1000:] {
		tr.Insert(k, TID(1000+i))
	}
	for _, k := range keys[:10] {
		tr.Delete(k)
	}

	// Session 2: the follower offers its frontier; the logs retain it.
	lsns := fol.AppliedLSNs()
	if lsns == nil {
		t.Fatal("AppliedLSNs returned nil after a complete bootstrap")
	}
	rec2 := &recordingSink{}
	sess2, resumed, err := tr.NewReplicationSessionFrom(rec2, lsns)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed {
		t.Fatal("leader declined a resume its logs can serve")
	}
	stop2 := make(chan struct{})
	close(stop2)
	if err := sess2.Run(stop2); err != nil {
		t.Fatal(err)
	}
	sess2.Close()
	if err := fol.Feed(bytes.NewReader(rec2.buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fol.Resumes() != 1 || fol.Bootstraps() != 1 {
		t.Fatalf("Resumes=%d Bootstraps=%d, want 1, 1", fol.Resumes(), fol.Bootstraps())
	}
	if err := fol.Verify(); err != nil {
		t.Fatal(err)
	}
	if got, want := fol.Len(), tr.Len(); got != want {
		t.Fatalf("Len = %d, leader has %d", got, want)
	}
	for i, k := range keys {
		tid, found, lerr := fol.Lookup(k)
		if lerr != nil {
			t.Fatal(lerr)
		}
		if i < 10 {
			if found {
				t.Fatalf("deleted key %d visible after resume", i)
			}
		} else if !found || tid != TID(i) {
			t.Fatalf("key %d = (%d, %v)", i, tid, found)
		}
	}

	// An immediate third resume with nothing new to ship is also legal:
	// the tail is simply empty.
	rec3 := &recordingSink{}
	sess3, resumed, err := tr.NewReplicationSessionFrom(rec3, fol.AppliedLSNs())
	if err != nil || !resumed {
		t.Fatalf("idle resume = (%v, %v)", resumed, err)
	}
	stop3 := make(chan struct{})
	close(stop3)
	if err := sess3.Run(stop3); err != nil {
		t.Fatal(err)
	}
	sess3.Close()
	before := fol.TailRecords()
	if err := fol.Feed(bytes.NewReader(rec3.buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fol.TailRecords() != before {
		t.Fatalf("idle resume applied %d records", fol.TailRecords()-before)
	}
}

// TestReplicationResumeDeclined pins the fallback: when the leader's logs
// rotated past the follower's frontier (a Checkpoint between disconnect
// and reconnect), or the vector does not match the shard layout, the
// session degrades to a full bootstrap on the same connection — and the
// follower's second bootstrap cleanly replaces its first.
func TestReplicationResumeDeclined(t *testing.T) {
	dir := t.TempDir()
	keys := dataset.Generate(dataset.Integer, 2000, 17)
	store := &tidstore.Store{}
	for _, k := range keys {
		store.Add(k)
	}
	tr, _, err := OpenDurableShardedTree(dir, store.Key, 4, keys, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i, k := range keys[:1000] {
		tr.Insert(k, TID(i))
	}

	rec := &recordingSink{}
	sess, err := tr.NewReplicationSession(rec)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	if err := sess.Run(stop); err != nil {
		t.Fatal(err)
	}
	sess.Close()
	fol := NewFollower(store.Key, nil)
	if err := fol.Feed(bytes.NewReader(rec.buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	frontier := fol.AppliedLSNs()

	// Wrong shard count: full fallback, no error.
	if _, resumed, err := func() (*ReplicationSession, bool, error) {
		s, r, e := tr.NewReplicationSessionFrom(&recordingSink{}, frontier[:2])
		if s != nil {
			s.Close()
		}
		return s, r, e
	}(); err != nil || resumed {
		t.Fatalf("short vector: resumed=%v err=%v, want full fallback", resumed, err)
	}

	// The leader writes on and checkpoints: every log rotates its base to
	// its last LSN, past the disconnected follower's frontier.
	for i, k := range keys[1000:] {
		tr.Insert(k, TID(1000+i))
	}
	if err := tr.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	rec2 := &recordingSink{}
	sess2, resumed, err := tr.NewReplicationSessionFrom(rec2, frontier)
	if err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("leader resumed across a log rotation that dropped the frontier")
	}
	stop2 := make(chan struct{})
	close(stop2)
	if err := sess2.Run(stop2); err != nil {
		t.Fatal(err)
	}
	sess2.Close()
	if err := fol.Feed(bytes.NewReader(rec2.buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if fol.Bootstraps() != 2 || fol.Resumes() != 0 {
		t.Fatalf("Bootstraps=%d Resumes=%d, want 2, 0", fol.Bootstraps(), fol.Resumes())
	}
	if err := fol.Verify(); err != nil {
		t.Fatal(err)
	}
	if got, want := fol.Len(), tr.Len(); got != want {
		t.Fatalf("Len = %d, leader has %d", got, want)
	}

	// A frontier AHEAD of the leader (diverged history) must also decline.
	ahead := fol.AppliedLSNs()
	for i := range ahead {
		ahead[i] += 100
	}
	sess3, resumed, err := tr.NewReplicationSessionFrom(&recordingSink{}, ahead)
	if err != nil {
		t.Fatal(err)
	}
	sess3.Close()
	if resumed {
		t.Fatal("leader resumed a follower claiming LSNs it never assigned")
	}
}

// TestFollowerResumeRequiresBootstrap: a RESUME stream aimed at a follower
// with no complete bootstrap is a protocol error, never a crash or a
// silent empty state.
func TestFollowerResumeRequiresBootstrap(t *testing.T) {
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, wire.RepResume, nil); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(&buf, wire.RepTailStart, nil); err != nil {
		t.Fatal(err)
	}
	store := &tidstore.Store{}
	fol := NewFollower(store.Key, nil)
	if err := fol.Feed(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("un-bootstrapped follower accepted a RESUME stream")
	}
	if fol.AppliedLSNs() != nil {
		t.Fatal("AppliedLSNs non-nil before any bootstrap")
	}
}

// TestReplicationSessionRequiresDurable pins the API contract: sessions
// need a write-ahead log to tail, and a closed store refuses new sessions.
func TestReplicationSessionRequiresDurable(t *testing.T) {
	keys := dataset.Generate(dataset.Integer, 100, 3)
	store := &tidstore.Store{}
	for _, k := range keys {
		store.Add(k)
	}
	plain := NewShardedTree(store.Key, 2, keys)
	if _, err := plain.NewReplicationSession(&bytes.Buffer{}); err == nil {
		t.Fatal("non-durable tree accepted a replication session")
	}

	dir := t.TempDir()
	tr, _, err := OpenDurableShardedTree(dir, store.Key, 2, keys, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.NewReplicationSession(&bytes.Buffer{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed tree: err = %v, want ErrClosed", err)
	}
}
