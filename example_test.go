package hot_test

import (
	"fmt"

	hot "github.com/hotindex/hot"
)

func ExampleMap() {
	m := hot.NewMap()
	m.Set([]byte("cherry"), 3)
	m.Set([]byte("apple"), 1)
	m.Set([]byte("banana"), 2)

	v, ok := m.Get([]byte("banana"))
	fmt.Println(v, ok)

	m.Range(nil, -1, func(k []byte, v uint64) bool {
		fmt.Printf("%s=%d\n", k, v)
		return true
	})
	// Output:
	// 2 true
	// apple=1
	// banana=2
	// cherry=3
}

func ExampleMap_Range() {
	m := hot.NewMap()
	for _, city := range []string{"berlin", "bern", "bonn", "boston", "bogota"} {
		m.Set([]byte(city), uint64(len(city)))
	}
	// The first two keys at or after "bo".
	m.Range([]byte("bo"), 2, func(k []byte, v uint64) bool {
		fmt.Printf("%s\n", k)
		return true
	})
	// Output:
	// bogota
	// bonn
}

func ExampleUint64Set() {
	s := hot.NewUint64Set()
	for _, v := range []uint64{42, 7, 99, 7} {
		s.Insert(v)
	}
	fmt.Println("size:", s.Len())
	s.Ascend(10, -1, func(v uint64) bool {
		fmt.Println(v)
		return true
	})
	// Output:
	// size: 3
	// 42
	// 99
}

func ExampleNew() {
	// The paper's index abstraction: the tree stores tuple identifiers and
	// resolves keys from the base table through a loader.
	table := []string{"ada\x00", "alan\x00", "grace\x00"}
	idx := hot.New(func(tid hot.TID, _ []byte) []byte { return []byte(table[tid]) })
	for tid := range table {
		idx.Insert([]byte(table[tid]), hot.TID(tid))
	}
	tid, ok := idx.Lookup([]byte("alan\x00"))
	fmt.Println(tid, ok)
	// Output:
	// 1 true
}

func ExampleTree_Scan() {
	table := []string{"a1\x00", "a2\x00", "b1\x00", "b2\x00", "c1\x00"}
	idx := hot.New(func(tid hot.TID, _ []byte) []byte { return []byte(table[tid]) })
	for tid := range table {
		idx.Insert([]byte(table[tid]), hot.TID(tid))
	}
	// Up to 2 entries starting at the first key ≥ "b".
	idx.Scan([]byte("b"), 2, func(tid hot.TID) bool {
		fmt.Println(table[tid][:2])
		return true
	})
	// Output:
	// b1
	// b2
}

func ExampleNewConcurrent() {
	keys := [][]byte{[]byte("k1\x00"), []byte("k2\x00")}
	idx := hot.NewConcurrent(func(tid hot.TID, _ []byte) []byte { return keys[tid] })
	done := make(chan struct{})
	go func() {
		idx.Insert(keys[0], 0)
		close(done)
	}()
	idx.Insert(keys[1], 1) // safe concurrently: ROWEX writers lock per node
	<-done
	fmt.Println(idx.Len())
	// Output:
	// 2
}
