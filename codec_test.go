package hot

import (
	"bytes"
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"github.com/hotindex/hot/internal/dataset"
	"github.com/hotindex/hot/internal/persist"
	"github.com/hotindex/hot/internal/tidstore"
)

// TestCodecColdTierOracle runs the cold tier entirely over packed section
// files: every shard demoted under SnapshotCodecPacked, then point reads,
// batch reads, a full merged scan and Verify against a resident oracle.
// The same data demoted raw pins the payoff — packed cold files must be
// smaller on disk.
func TestCodecColdTierOracle(t *testing.T) {
	for _, kind := range []dataset.Kind{dataset.Integer, dataset.URL} {
		t.Run(kind.String(), func(t *testing.T) {
			keys := dataset.Generate(kind, 6000, 42)
			store := &tidstore.Store{}
			for _, k := range keys {
				store.Add(k)
			}
			coldBytes := make(map[SnapshotCodec]int64)
			for _, codec := range []SnapshotCodec{SnapshotCodecRaw, SnapshotCodecPacked} {
				st, oracle := buildPair(keys, store, 8)
				st.SetSnapshotCodec(codec)
				if err := st.EnableColdTier(ColdTierConfig{Dir: t.TempDir()}); err != nil {
					t.Fatal(err)
				}
				for s := 0; s < st.Shards(); s++ {
					if err := st.Demote(s); err != nil {
						t.Fatalf("Demote(%d): %v", s, err)
					}
				}
				if err := st.Verify(); err != nil {
					t.Fatalf("%v cold Verify: %v", codec, err)
				}
				for i, k := range keys {
					tid, ok := st.Lookup(k)
					if !ok || tid != TID(i) {
						t.Fatalf("%v cold lookup %q = (%d, %v), want (%d, true)", codec, k, tid, ok, i)
					}
				}
				if _, ok := st.Lookup([]byte("\xff\xff\xff-absent")); ok {
					t.Fatalf("%v: absent key found cold", codec)
				}
				want := scanSeq(oracle, store)
				got := scanSeq(st, store)
				if len(got) != len(want) {
					t.Fatalf("%v cold scan yields %d keys, want %d", codec, len(got), len(want))
				}
				for i := range want {
					if !bytes.Equal(got[i], want[i]) {
						t.Fatalf("%v cold scan diverges at %d", codec, i)
					}
				}
				coldBytes[codec] = st.ColdStats().ColdBytes
			}
			if coldBytes[SnapshotCodecPacked] >= coldBytes[SnapshotCodecRaw] {
				t.Fatalf("packed cold tier (%d B) not smaller than raw (%d B)",
					coldBytes[SnapshotCodecPacked], coldBytes[SnapshotCodecRaw])
			}
			t.Logf("%s cold bytes: raw %d, packed %d (%.1f%%)", kind,
				coldBytes[SnapshotCodecRaw], coldBytes[SnapshotCodecPacked],
				100*float64(coldBytes[SnapshotCodecPacked])/float64(coldBytes[SnapshotCodecRaw]))
		})
	}
}

// TestCodecDurableShardedReopen checkpoints a durable sharded tree with
// the packed codec, confirms the files on disk really hold packed blocks,
// and reopens the store — under the packed codec and then under raw
// (codec choice must never gate reopening).
func TestCodecDurableShardedReopen(t *testing.T) {
	dir := t.TempDir()
	keys := dataset.Generate(dataset.Integer, 4000, 9)
	store := &tidstore.Store{}
	for _, k := range keys {
		store.Add(k)
	}
	st, _, err := OpenDurableShardedTree(dir, store.Key, 4, keys, DurableOptions{
		Codec: SnapshotCodecPacked,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if !st.Insert(k, TID(i)) {
			t.Fatalf("insert %d failed", i)
		}
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	secs, err := persist.ScanSections(filepath.Join(dir, "snap.hot"))
	if err != nil {
		t.Fatal(err)
	}
	packed := 0
	var stored, unpacked int64
	for _, s := range secs {
		packed += s.PackedBlocks
		stored += s.Bytes
		unpacked += s.UnpackedBytes
	}
	if packed == 0 {
		t.Fatal("packed-codec checkpoint wrote no packed blocks")
	}
	if stored >= unpacked {
		t.Fatalf("checkpoint stored %d B, unpacked equivalent %d B", stored, unpacked)
	}

	// Reopen under each codec; both must restore every entry.
	for _, codec := range []SnapshotCodec{SnapshotCodecPacked, SnapshotCodecRaw} {
		st, info, err := OpenDurableShardedTree(dir, store.Key, 4, keys, DurableOptions{Codec: codec})
		if err != nil {
			t.Fatalf("reopen with %v: %v", codec, err)
		}
		if info.SnapshotEntries != uint64(len(keys)) {
			t.Fatalf("reopen with %v restored %d entries, want %d", codec, info.SnapshotEntries, len(keys))
		}
		for i, k := range keys {
			if tid, ok := st.Lookup(k); !ok || tid != TID(i) {
				t.Fatalf("reopen with %v: lookup %q = (%d, %v)", codec, k, tid, ok)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCodecPackedUint64Set checks the frozen packed set against a map
// oracle — membership, ordered iteration, duplicates collapsed — and that
// its footprint actually undercuts the 8-bytes-per-value flat baseline.
func TestCodecPackedUint64Set(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]uint64, 0, 50000)
	oracle := make(map[uint64]bool, 50000)
	v := uint64(0)
	for i := 0; i < 50000; i++ {
		v += 1 + rng.Uint64()%4096
		vals = append(vals, v)
		oracle[v] = true
	}
	// Shuffle and duplicate some values: PackUint64s must sort and dedup.
	input := append(append([]uint64(nil), vals...), vals[:1000]...)
	rng.Shuffle(len(input), func(i, j int) { input[i], input[j] = input[j], input[i] })

	p := PackUint64s(input)
	if p.Len() != len(vals) {
		t.Fatalf("Len = %d, want %d (duplicates not collapsed?)", p.Len(), len(vals))
	}
	for _, v := range vals[:2000] {
		if !p.Contains(v) {
			t.Fatalf("Contains(%d) = false for a member", v)
		}
	}
	miss := 0
	for i := 0; i < 2000; i++ {
		x := rng.Uint64()
		if !oracle[x] && p.Contains(x) {
			t.Fatalf("Contains(%d) = true for a non-member", x)
		}
		if !oracle[x] {
			miss++
		}
	}
	if miss == 0 {
		t.Fatal("probe set never missed; test is vacuous")
	}
	var got []uint64
	p.Ascend(0, -1, func(x uint64) bool {
		got = append(got, x)
		return true
	})
	sorted := append([]uint64(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(got) != len(sorted) {
		t.Fatalf("Ascend yielded %d values, want %d", len(got), len(sorted))
	}
	for i := range sorted {
		if got[i] != sorted[i] {
			t.Fatalf("Ascend diverges at %d: %d vs %d", i, got[i], sorted[i])
		}
	}
	// Ranged iteration starts exactly at the first value >= from.
	from := sorted[len(sorted)/2]
	var first uint64
	p.Ascend(from, 1, func(x uint64) bool { first = x; return true })
	if first != from {
		t.Fatalf("Ascend(%d) started at %d", from, first)
	}

	m := p.Memory()
	if m.GoBytes >= m.PaperBytes {
		t.Fatalf("packed set uses %d B, flat baseline %d B — no win", m.GoBytes, m.PaperBytes)
	}
	t.Logf("packed set: %d values, %d B packed vs %d B flat (%.1f%%)",
		p.Len(), m.GoBytes, m.PaperBytes, 100*float64(m.GoBytes)/float64(m.PaperBytes))

	// Pack() from a live set agrees with PackUint64s on the same values.
	s := NewUint64Set()
	for _, x := range vals[:5000] {
		s.Insert(x)
	}
	q := s.Pack()
	if q.Len() != 5000 {
		t.Fatalf("Pack() Len = %d, want 5000", q.Len())
	}
	for _, x := range vals[:5000] {
		if !q.Contains(x) {
			t.Fatalf("Pack() lost %d", x)
		}
	}
}

// TestCodecSnapshotSkew pins the user-facing skew behavior: a snapshot
// block stamped with a codec this build does not know fails a load with
// the typed SnapErrUnsupportedCodec — never a checksum mismatch that
// would read as disk corruption.
func TestCodecSnapshotSkew(t *testing.T) {
	store := &tidstore.Store{}
	tr := New(store.Key)
	for _, k := range dataset.Generate(dataset.URL, 2000, 3) {
		tr.Insert(k, store.Add(k))
	}
	tr.SetSnapshotCodec(SnapshotCodecPacked)
	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTree(bytes.NewReader(buf.Bytes()), store.Key); err != nil {
		t.Fatalf("packed snapshot failed to load: %v", err)
	}
	blob := buf.Bytes()
	blob[16+3] = 0x7F // stamp an unknown codec on the first block
	_, err := LoadTree(bytes.NewReader(blob), store.Key)
	var se *SnapshotError
	if !errors.As(err, &se) || se.Kind != SnapErrUnsupportedCodec {
		t.Fatalf("unknown-codec load returned %v, want SnapErrUnsupportedCodec", err)
	}
	if se.Kind == SnapErrChecksum {
		t.Fatal("codec skew misreported as checksum damage")
	}
}
