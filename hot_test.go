package hot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/hotindex/hot/internal/tidstore"
)

func TestTreePublicAPI(t *testing.T) {
	s := &tidstore.Store{}
	tr := New(s.Key)
	words := []string{"delta", "alpha", "charlie", "bravo", "echo"}
	for _, w := range words {
		if !tr.Insert([]byte(w), s.AddString(w)) {
			t.Fatalf("insert %q failed", w)
		}
	}
	if tr.Len() != len(words) {
		t.Fatalf("len = %d", tr.Len())
	}
	if tid, ok := tr.Lookup([]byte("charlie")); !ok || string(s.Key(tid, nil)) != "charlie" {
		t.Fatal("lookup failed")
	}
	var got []string
	tr.Scan(nil, 10, func(tid TID) bool {
		got = append(got, string(s.Key(tid, nil)))
		return true
	})
	want := append([]string(nil), words...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("scan = %v", got)
	}
	if !tr.Delete([]byte("bravo")) || tr.Len() != 4 {
		t.Fatal("delete failed")
	}
	if old, replaced := tr.Upsert([]byte("echo"), s.AddString("echo")); !replaced || string(s.Key(old, nil)) != "echo" {
		t.Fatal("upsert failed")
	}
	if tr.Height() < 1 {
		t.Fatal("height")
	}
	if m := tr.Memory(); m.Nodes == 0 || m.PaperBytes == 0 {
		t.Fatal("memory stats empty")
	}
	if d := tr.Depths(); d.Leaves != 4 {
		t.Fatalf("depths = %+v", d)
	}
}

func TestMapArbitraryKeys(t *testing.T) {
	m := NewMap()
	// Keys with embedded zeros, prefixes of each other, and empty keys all
	// coexist thanks to the order-preserving escape.
	keys := [][]byte{
		{}, {0}, {0, 0}, {0, 1}, {1}, {1, 0},
		[]byte("a"), []byte("ab"), []byte("a\x00b"), []byte("a\x00"),
	}
	for i, k := range keys {
		if !m.Set(k, uint64(i+100)) {
			t.Fatalf("Set(%x) reported existing", k)
		}
	}
	if m.Len() != len(keys) {
		t.Fatalf("len = %d, want %d", m.Len(), len(keys))
	}
	for i, k := range keys {
		v, ok := m.Get(k)
		if !ok || v != uint64(i+100) {
			t.Fatalf("Get(%x) = (%d,%v), want %d", k, v, ok, i+100)
		}
	}
	// Overwrite.
	if m.Set(keys[3], 999) {
		t.Fatal("overwrite reported new")
	}
	if v, _ := m.Get(keys[3]); v != 999 {
		t.Fatal("overwrite lost")
	}
	// Range order must equal lexicographic byte order of the raw keys.
	sorted := append([][]byte(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	var got [][]byte
	m.Range(nil, -1, func(k []byte, v uint64) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if len(got) != len(sorted) {
		t.Fatalf("range returned %d keys", len(got))
	}
	for i := range got {
		if !bytes.Equal(got[i], sorted[i]) {
			t.Fatalf("range[%d] = %x, want %x", i, got[i], sorted[i])
		}
	}
	// Bounded range from a start key.
	got = got[:0]
	m.Range([]byte{0, 0}, 3, func(k []byte, v uint64) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if len(got) != 3 || !bytes.Equal(got[0], []byte{0, 0}) {
		t.Fatalf("bounded range = %x", got)
	}
	// Delete.
	if !m.Delete(keys[0]) || m.Delete(keys[0]) {
		t.Fatal("delete misbehaved")
	}
}

func TestMapRandomOracle(t *testing.T) {
	m := NewMap()
	oracle := map[string]uint64{}
	rng := rand.New(rand.NewSource(51))
	for step := 0; step < 20000; step++ {
		k := make([]byte, rng.Intn(12))
		for i := range k {
			k[i] = byte(rng.Intn(4)) // small alphabet: many prefixes/zeros
		}
		switch rng.Intn(4) {
		case 0:
			if got := m.Delete(k); got != (func() bool { _, ok := oracle[string(k)]; return ok })() {
				t.Fatalf("delete mismatch at %d", step)
			}
			delete(oracle, string(k))
		default:
			v := rng.Uint64()
			isNew := m.Set(k, v)
			if _, present := oracle[string(k)]; present == isNew {
				t.Fatalf("Set new=%v but oracle present=%v", isNew, present)
			}
			oracle[string(k)] = v
		}
		if m.Len() != len(oracle) {
			t.Fatalf("len %d != %d", m.Len(), len(oracle))
		}
	}
	for k, v := range oracle {
		got, ok := m.Get([]byte(k))
		if !ok || got != v {
			t.Fatalf("Get(%x) = (%d,%v), want %d", k, got, ok, v)
		}
	}
}

func TestMapKeyLengthLimit(t *testing.T) {
	m := NewMap()
	// MaxMapKeyLen is accepted even in the worst case (all zero bytes).
	big := make([]byte, MaxMapKeyLen)
	if !m.Set(big, 1) {
		t.Fatal("max-length zero key rejected")
	}
	if v, ok := m.Get(big); !ok || v != 1 {
		t.Fatal("max-length key lost")
	}
	defer func() {
		if recover() == nil {
			t.Error("no panic for oversize Map key")
		}
	}()
	m.Set(make([]byte, MaxMapKeyLen+1), 2)
}

func TestEscapeKeyOrderPreserving(t *testing.T) {
	f := func(a, b []byte) bool {
		ea, eb := escapeKey(nil, a), escapeKey(nil, b)
		return sign(bytes.Compare(a, b)) == sign(bytes.Compare(ea, eb))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Round trip.
	g := func(a []byte) bool {
		return bytes.Equal(unescapeKey(nil, escapeKey(nil, a)), a)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestUint64Set(t *testing.T) {
	s := NewUint64Set()
	vals := []uint64{5, 1, 9, 3, 7, 1 << 62, 0}
	for _, v := range vals {
		if !s.Insert(v) {
			t.Fatalf("insert %d failed", v)
		}
	}
	if s.Insert(5) {
		t.Fatal("duplicate insert")
	}
	for _, v := range vals {
		if !s.Contains(v) {
			t.Fatalf("missing %d", v)
		}
	}
	if s.Contains(4) {
		t.Fatal("phantom 4")
	}
	if mn, ok := s.Min(); !ok || mn != 0 {
		t.Fatalf("min = %d,%v", mn, ok)
	}
	var got []uint64
	s.Ascend(3, -1, func(v uint64) bool {
		got = append(got, v)
		return true
	})
	if fmt.Sprint(got) != fmt.Sprint([]uint64{3, 5, 7, 9, 1 << 62}) {
		t.Fatalf("ascend = %v", got)
	}
	if !s.Delete(9) || s.Contains(9) || s.Len() != len(vals)-1 {
		t.Fatal("delete failed")
	}
}

func TestConcurrentTreePublicAPI(t *testing.T) {
	s := &tidstore.Store{}
	keys := make([][]byte, 5000)
	for i := range keys {
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, uint64(i)*0x9E3779B97F4A7C15>>1)
		keys[i] = k
		s.Add(k)
	}
	tr := NewConcurrent(s.Key)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(keys); i += 4 {
				tr.Insert(keys[i], TID(i))
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != len(keys) {
		t.Fatalf("len = %d", tr.Len())
	}
	for i, k := range keys {
		if tid, ok := tr.Lookup(k); !ok || tid != TID(i) {
			t.Fatalf("lookup %d failed", i)
		}
	}
	if freed, pending := tr.ReclaimStats(); freed+uint64(pending) == 0 {
		t.Error("no reclamation activity recorded")
	}
	if tr.Height() == 0 || tr.Memory().Nodes == 0 || tr.Depths().Leaves != len(keys) {
		t.Error("stats methods broken")
	}
}

func TestConcurrentUint64Set(t *testing.T) {
	s := NewConcurrentUint64Set()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < 8000; i += 4 {
				s.Insert(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 8000 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < 8000; i++ {
		if !s.Contains(uint64(i)) {
			t.Fatalf("missing %d", i)
		}
	}
	n := 0
	prev := int64(-1)
	s.Ascend(0, -1, func(v uint64) bool {
		if int64(v) <= prev {
			t.Fatalf("out of order: %d after %d", v, prev)
		}
		prev = int64(v)
		n++
		return true
	})
	if n != 8000 {
		t.Fatalf("ascend visited %d", n)
	}
	if !s.Delete(4000) || s.Contains(4000) {
		t.Fatal("delete failed")
	}
}
