// hot-chaos is the robustness analogue of hot-ycsb: instead of measuring
// throughput it tries to break the ROWEX trie. It runs seeded rounds of
// concurrent inserts, upserts, deletes, lookups and ordered scans with the
// fault-injection points of internal/chaos armed — widened lock windows,
// delayed epoch advances, injected pin-slot contention — then verifies the
// full structural-invariant catalog between rounds and reports how many
// injected faults the index survived, alongside the writer-path
// restart/backoff/validation and epoch-contention counters.
//
// With -shards N the same fault pressure is aimed at the range-sharded
// writer path instead: every shard's ROWEX writers and epoch domain see
// the injections, and between rounds each shard is verified individually
// (structural invariants plus shard-range containment) while the
// aggregate Len is checked against a full cross-shard merged scan oracle.
// Sharded runs additionally route half of the mutations through the
// asynchronous submission-queue path (UpsertAsync/DeleteAsync) with the
// queue-push and writer-handoff fault points armed, and Flush the queues
// before each round's verification.
//
//	hot-chaos -seed 1 -ops 100000          # acceptance run
//	hot-chaos -shards 8                    # sharded writer path
//	hot-chaos -prob 0.05 -workers 16       # heavier fault pressure
//	hot-chaos -disarmed                    # baseline without injections
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hotindex/hot"
	"github.com/hotindex/hot/internal/chaos"
	"github.com/hotindex/hot/internal/tidstore"
)

func main() {
	var (
		seed     = flag.Int64("seed", 1, "PRNG seed for keys, workload and injections")
		ops      = flag.Int("ops", 100_000, "total operations across all rounds")
		nkeys    = flag.Int("keys", 1<<15, "distinct keys in the working set")
		workers  = flag.Int("workers", defaultWorkers(), "concurrent worker goroutines")
		rounds   = flag.Int("rounds", 8, "verification rounds (ops are split across them)")
		prob     = flag.Float64("prob", 0.01, "per-hit injection probability")
		shards   = flag.Int("shards", 0, "run against a range-sharded tree with this many shards (0 = single ConcurrentTree)")
		disarmed = flag.Bool("disarmed", false, "run without arming the injection registry")
	)
	flag.Parse()
	if *ops < 1 || *nkeys < 1 || *workers < 1 || *rounds < 1 {
		fmt.Fprintln(os.Stderr, "hot-chaos: -ops, -keys, -workers and -rounds must be >= 1")
		os.Exit(2)
	}
	if *prob < 0 || *prob > 1 {
		fmt.Fprintln(os.Stderr, "hot-chaos: -prob must be in [0, 1]")
		os.Exit(2)
	}

	store, keys := genKeys(*nkeys, *seed)
	var tr index
	if *shards > 0 {
		tr = hot.NewShardedTree(store.Key, *shards, keys)
	} else {
		tr = hot.NewConcurrent(store.Key)
	}

	reg := chaos.New(*seed)
	if !*disarmed {
		reg.On(chaos.RowexAfterTraverse, *prob, chaos.Yield(4))
		reg.On(chaos.RowexBetweenLocks, *prob, chaos.Yield(2))
		reg.On(chaos.RowexBeforeValidate, *prob, chaos.Yield(2))
		reg.On(chaos.RowexMidCopy, *prob, chaos.Yield(1))
		reg.On(chaos.RowexBeforeUnlock, *prob, chaos.Yield(1))
		reg.On(chaos.EpochEnter, *prob, chaos.Yield(1))
		reg.On(chaos.EpochAdvance, *prob, chaos.Sleep(50*time.Microsecond))
		reg.On(chaos.ShardQueuePush, *prob, chaos.Yield(2))
		reg.On(chaos.ShardWriterHandoff, *prob, chaos.Yield(2))
		reg.Arm()
		defer chaos.Disarm()
	}

	fmt.Printf("hot-chaos: seed=%d ops=%d keys=%d workers=%d rounds=%d prob=%g shards=%d armed=%v\n",
		*seed, *ops, *nkeys, *workers, *rounds, *prob, *shards, !*disarmed)

	var (
		corruptions int
		scanFaults  atomic.Uint64
		prev        hot.OpStats
		start       = time.Now()
	)
	perRound := *ops / *rounds
	for r := 0; r < *rounds; r++ {
		runRound(tr, store, keys, *workers, perRound, *seed+int64(r)*997, &scanFaults)
		if ai, ok := tr.(asyncIndex); ok {
			ai.Flush() // drain the submission queues before verification
		}
		// All workers joined: the trie is quiescent and must verify clean.
		// On a sharded tree Verify covers every shard's structural
		// invariants plus shard-range containment of every stored key.
		if err := tr.Verify(); err != nil {
			corruptions++
			fmt.Printf("round %d: CORRUPTION: %v\n", r, err)
			continue
		}
		// Quiescent scan oracle: a full ordered scan (the cross-shard k-way
		// merge when sharded) must visit exactly Len() keys, strictly
		// ascending.
		if got, want := oracleScanCount(tr, store, *nkeys), tr.Len(); got != want {
			corruptions++
			fmt.Printf("round %d: CORRUPTION: full scan visited %d keys, Len()=%d\n", r, got, want)
			continue
		}
		st := tr.OpStats()
		fmt.Printf("round %d: len=%d height=%d  %s\n", r, tr.Len(), tr.Height(), st.Sub(prev))
		if sh, ok := tr.(*hot.ShardedTree); ok {
			fmt.Printf("  shard lens:")
			for i := 0; i < sh.Shards(); i++ {
				fmt.Printf(" %d", sh.ShardLen(i))
			}
			fmt.Println()
		}
		prev = st
	}
	if n := scanFaults.Load(); n > 0 {
		corruptions++
		fmt.Printf("scan order violations: %d\n", n)
	}

	elapsed := time.Since(start)
	st := tr.OpStats()
	freed, pending := tr.ReclaimStats()
	fmt.Printf("\ntotals after %.2fs (%.3f mops):\n", elapsed.Seconds(),
		float64(*ops)/elapsed.Seconds()/1e6)
	fmt.Printf("  opstats: %s\n", st)
	fmt.Printf("  reclaim: freed=%d pending=%d\n", freed, pending)
	if !*disarmed {
		fmt.Printf("  survived faults: %d\n", reg.FiredTotal())
		for _, p := range chaos.Points() {
			fmt.Printf("    %-24s hits=%-8d fired=%d\n", p, reg.Hits(p), reg.Fired(p))
		}
	}
	if corruptions > 0 {
		fmt.Printf("FAIL: %d corruption(s) detected\n", corruptions)
		os.Exit(1)
	}
	fmt.Println("OK: zero corruption errors")
}

// asyncIndex is the submission-queue surface; only hot.ShardedTree
// provides it, so single-tree runs stay all-synchronous.
type asyncIndex interface {
	UpsertAsync(k []byte, tid hot.TID)
	DeleteAsync(k []byte)
	Flush() (applied, rejected uint64)
}

// index is the surface the chaos driver needs; hot.ConcurrentTree and
// hot.ShardedTree both provide it.
type index interface {
	Upsert(k []byte, tid hot.TID) (hot.TID, bool)
	Delete(k []byte) bool
	Lookup(k []byte) (hot.TID, bool)
	Scan(start []byte, max int, fn func(hot.TID) bool) int
	Len() int
	Height() int
	Verify() error
	OpStats() hot.OpStats
	ReclaimStats() (uint64, int64)
}

// oracleScanCount scans the whole index in order, asserting strictly
// ascending keys, and returns the number of entries visited (-1 on an
// order violation). In a quiescent state this must equal Len().
func oracleScanCount(tr index, store *tidstore.Store, nkeys int) int {
	var prev []byte
	count := 0
	ordered := true
	tr.Scan(nil, nkeys+1, func(tid hot.TID) bool {
		got := store.Key(tid, nil)
		if count > 0 && string(prev) >= string(got) {
			ordered = false
			return false
		}
		prev = append(prev[:0], got...)
		count++
		return true
	})
	if !ordered {
		return -1
	}
	return count
}

// defaultWorkers keeps writer interleaving meaningful even on one CPU:
// injected yields force goroutine switches inside the protocol windows, so
// more goroutines than cores still produce real contention.
func defaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 4 {
		return n
	}
	return 4
}

// genKeys registers n distinct 8-byte keys in a fresh store.
func genKeys(n int, seed int64) (*tidstore.Store, [][]byte) {
	s := &tidstore.Store{}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[uint64]bool, n)
	keys := make([][]byte, 0, n)
	for len(keys) < n {
		v := rng.Uint64() >> 1
		if seen[v] {
			continue
		}
		seen[v] = true
		k := make([]byte, 8)
		binary.BigEndian.PutUint64(k, v)
		s.Add(k)
		keys = append(keys, k)
	}
	return s, keys
}

// runRound fires ops operations at the trie from workers goroutines: a
// 45/25/20/10 mix of upserts, deletes, lookups and bounded ordered scans.
// On a sharded tree half the mutations go through the async submission
// queues; upserts always write the key's canonical TID, so sync/async
// reorderings never change a stored value and the lookup probe stays
// valid. Scans double as wait-free-reader integrity probes: observed keys
// must be strictly ascending.
func runRound(tr index, store *tidstore.Store, keys [][]byte,
	workers, ops int, seed int64, scanFaults *atomic.Uint64) {
	ai, _ := tr.(asyncIndex)
	var wg sync.WaitGroup
	perWorker := ops / workers
	if perWorker == 0 {
		perWorker = 1
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			var prevKey []byte
			for i := 0; i < perWorker; i++ {
				ki := rng.Intn(len(keys))
				k := keys[ki]
				switch c := rng.Intn(100); {
				case c < 22 && ai != nil:
					ai.UpsertAsync(k, hot.TID(ki))
				case c < 45:
					tr.Upsert(k, hot.TID(ki))
				case c < 58 && ai != nil:
					ai.DeleteAsync(k)
				case c < 70:
					tr.Delete(k)
				case c < 90:
					if tid, ok := tr.Lookup(k); ok && tid != hot.TID(ki) {
						scanFaults.Add(1)
					}
				default:
					prevKey = prevKey[:0]
					tr.Scan(k, 100, func(tid hot.TID) bool {
						got := store.Key(tid, nil)
						if len(prevKey) > 0 && string(prevKey) >= string(got) {
							scanFaults.Add(1)
							return false
						}
						prevKey = append(prevKey[:0], got...)
						return true
					})
				}
			}
		}(w)
	}
	wg.Wait()
}
