// hot-mem regenerates Figure 9: memory consumption of each index structure
// after the load phase, per data set, together with the paper's baselines
// (the raw 8-byte tuple identifiers and, for the textual data sets, the
// raw key bytes). Paper scale is -n 50000000.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/hotindex/hot/internal/bench"
	"github.com/hotindex/hot/internal/dataset"
)

func main() {
	var (
		n       = flag.Int("n", 1_000_000, "keys to load")
		indexes = flag.String("indexes", "hot,art,btree,masstree", "comma list of index structures")
		seed    = flag.Int64("seed", 2018, "data seed")
	)
	flag.Parse()

	fmt.Printf("memory after loading %d keys (paper-layout bytes)\n", *n)
	fmt.Printf("%-9s %-9s %12s %10s %12s\n", "dataset", "index", "total MB", "bytes/key", "vs raw keys")

	for _, kind := range dataset.Kinds() {
		data := bench.Load(kind, *n, 0, *seed)
		raw := dataset.RawBytes(data.Keys)
		fmt.Printf("%-9s %-9s %12.1f %10.2f %11s\n",
			kind, "tid-8B", float64(8**n)/1e6, 8.0, "-")
		fmt.Printf("%-9s %-9s %12.1f %10.2f %11s   (raw keys)\n",
			kind, "rawkey", float64(raw)/1e6, float64(raw)/float64(*n), "1.00x")
		for _, iname := range strings.Split(*indexes, ",") {
			inst, err := bench.New(strings.TrimSpace(iname), data.Store)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hot-mem:", err)
				os.Exit(1)
			}
			for i := 0; i < *n; i++ {
				inst.Idx.Insert(data.Keys[i], data.TIDs[i])
			}
			b := inst.PaperBytes()
			fmt.Printf("%-9s %-9s %12.1f %10.2f %10.2fx\n",
				kind, inst.Name, float64(b)/1e6, float64(b)/float64(*n), float64(b)/float64(raw))
		}
		fmt.Println()
	}
}
