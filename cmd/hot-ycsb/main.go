// hot-ycsb regenerates the paper's throughput experiments: Figure 8
// (workloads C, E and the insert-only load phase) and Appendix A (all six
// YCSB core workloads × uniform/zipfian request distributions), across the
// four data sets and four index structures.
//
// Paper scale is -n 50000000 -ops 100000000; the defaults are laptop-sized
// (1M/2M). Examples:
//
//	hot-ycsb                                # Figure 8 at default scale
//	hot-ycsb -all                           # all 48 Appendix A configs
//	hot-ycsb -workloads C -datasets url -indexes hot,art
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/hotindex/hot"
	"github.com/hotindex/hot/internal/bench"
	"github.com/hotindex/hot/internal/dataset"
	"github.com/hotindex/hot/internal/server"
	"github.com/hotindex/hot/internal/ycsb"
)

// record is one configuration's result in the -json output. The latency
// quantiles (µs) are present only when -latency captured them.
type record struct {
	Dataset  string  `json:"dataset"`
	Workload string  `json:"workload"`
	Dist     string  `json:"dist"`
	Index    string  `json:"index"`
	Batch    int     `json:"batch"`
	Shards   int     `json:"shards"`
	Threads  int     `json:"threads"`
	Async    int     `json:"async"`
	Wal      int     `json:"wal"`
	Net      int     `json:"net"`
	Conns    int     `json:"conns"`
	Codec    string  `json:"codec,omitempty"`
	Mops     float64 `json:"mops"`
	Misses   int     `json:"misses"`
	// SnapshotBytes is the size of a checkpoint taken after the run
	// (durable configs); BootstrapBytes is what a replication bootstrap
	// streams for the same tree (sharded in-process configs). Both shrink
	// under -codec packed.
	SnapshotBytes  int64 `json:"snapshot_bytes,omitempty"`
	BootstrapBytes int64 `json:"bootstrap_bytes,omitempty"`
	// Cold-tier fields, present only for -mem-budget configs.
	MemBudget  int64   `json:"mem_budget,omitempty"`
	ColdShards int     `json:"cold_shards,omitempty"`
	Demotions  uint64  `json:"demotions,omitempty"`
	Promotions uint64  `json:"promotions,omitempty"`
	HitRate    float64 `json:"hit_rate,omitempty"`
	P50us      float64 `json:"p50_us,omitempty"`
	P99us      float64 `json:"p99_us,omitempty"`
	P999us     float64 `json:"p999_us,omitempty"`
}

func main() {
	var (
		n         = flag.Int("n", 1_000_000, "keys inserted in the load phase")
		ops       = flag.Int("ops", 2_000_000, "transaction-phase operations")
		workloads = flag.String("workloads", "C,E,load", "comma list of A..F and/or 'load'")
		datasets  = flag.String("datasets", "url,email,yago,integer", "comma list of data sets")
		dists     = flag.String("dists", "uniform", "comma list of request distributions (uniform|zipf|latest)")
		indexes   = flag.String("indexes", "hot,art,btree,masstree", "comma list of index structures")
		all       = flag.Bool("all", false, "run all 6 workloads × {uniform, zipf} (Appendix A)")
		latency   = flag.Bool("latency", false, "capture and print per-operation latency percentiles")
		opstats   = flag.Bool("opstats", false, "print insertion-case and robustness counters after each configuration")
		batch     = flag.String("batch", "0", "comma list of read batch sizes routed through LookupBatch (0 = scalar lookups)")
		shards    = flag.String("shards", "0", "comma list of shard counts for the range-partitioned hot index (0 = unsharded; other indexes skip sharded configs)")
		threads   = flag.Int("threads", 0, "client goroutines for sharded configs, load and transaction phases (0 = one per shard)")
		async     = flag.String("async", "0", "comma list of 0/1: route writes through the sharded tree's submission-queue path (1 requires a sharded hot config)")
		wal       = flag.String("wal", "0", "comma list of 0/1: open the sharded hot index in durable (write-ahead-logged) mode in a temp dir (1 requires a sharded hot config)")
		memBudget = flag.String("mem-budget", "0", "comma list of resident-trie byte budgets for the pager-backed cold tier, enabled after the load phase (0 = unbounded; -k = 1/k of the measured resident footprint; requires a sharded -wal 1 in-process config)")
		netMode   = flag.String("net", "0", "comma list of 0/1: drive the index over TCP through hot-server instead of in-process (1 requires a sharded hot config; single client connection)")
		conns     = flag.String("conns", "0", "comma list of connection-pool sizes for -net 1 configs: N>0 drives the workload through a pool of N connections with one worker per connection (0 = one dedicated connection, single-threaded)")
		addr      = flag.String("addr", "", "external hot-server address for -net 1 configs (empty: spawn a loopback server per configuration)")
		codecList = flag.String("codec", "raw", "comma list of snapshot block codecs (raw|packed) for sharded configs: selects checkpoint/bootstrap encoding and records their sizes (packed requires a sharded in-process config)")
		jsonPath  = flag.String("json", "", "additionally write results as a JSON array to this file")
		seed      = flag.Int64("seed", 2018, "data/workload seed")
	)
	flag.Parse()
	var records []record
	var batches []int
	for _, b := range split(*batch) {
		v, err := strconv.Atoi(b)
		die(err)
		batches = append(batches, v)
	}
	var shardCounts []int
	for _, s := range split(*shards) {
		v, err := strconv.Atoi(s)
		die(err)
		shardCounts = append(shardCounts, v)
	}
	var asyncModes []bool
	for _, a := range split(*async) {
		switch a {
		case "0":
			asyncModes = append(asyncModes, false)
		case "1":
			asyncModes = append(asyncModes, true)
		default:
			die(fmt.Errorf("-async accepts a comma list of 0 and 1, got %q", a))
		}
	}
	var walModes []bool
	for _, w := range split(*wal) {
		switch w {
		case "0":
			walModes = append(walModes, false)
		case "1":
			walModes = append(walModes, true)
		default:
			die(fmt.Errorf("-wal accepts a comma list of 0 and 1, got %q", w))
		}
	}
	var netModes []bool
	for _, m := range split(*netMode) {
		switch m {
		case "0":
			netModes = append(netModes, false)
		case "1":
			netModes = append(netModes, true)
		default:
			die(fmt.Errorf("-net accepts a comma list of 0 and 1, got %q", m))
		}
	}
	var connCounts []int
	for _, c := range split(*conns) {
		v, err := strconv.Atoi(c)
		die(err)
		connCounts = append(connCounts, v)
	}
	var budgets []int64
	for _, m := range split(*memBudget) {
		v, err := strconv.ParseInt(m, 10, 64)
		die(err)
		budgets = append(budgets, v)
	}
	// Codec names are validated up front, like -dists: a typo is a hard
	// error before any load phase runs, never a silent fall-through to raw.
	var codecs []hot.SnapshotCodec
	for _, c := range split(*codecList) {
		v, err := hot.ParseSnapshotCodec(c)
		die(err)
		codecs = append(codecs, v)
	}

	wNames := split(*workloads)
	dNames := split(*dists)
	distsSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dists" {
			distsSet = true
		}
	})
	if *all {
		wNames = []string{"A", "B", "C", "D", "E", "F"}
		dNames = []string{"uniform", "zipf"}
	}
	// Every distribution name is validated up front: an unknown name is a
	// hard error before any load phase runs, never a silent substitution.
	for _, dname := range dNames {
		_, err := ycsb.ParseDistribution(dname)
		die(err)
	}

	fmt.Printf("load %d keys, %d txn ops per configuration\n", *n, *ops)
	fmt.Printf("%-9s %-26s %-8s %-10s %6s %10s %9s\n", "dataset", "workload", "dist", "index", "batch", "mops", "misses")

	for _, ds := range split(*datasets) {
		kind, err := dataset.ParseKind(ds)
		die(err)
		for _, wname := range wNames {
			w, err := ycsb.ByName(wname)
			die(err)
			reserve := 0
			if w.Insert > 0 {
				reserve = int(float64(*ops)*w.Insert) + 1024
			}
			data := bench.Load(kind, *n, reserve, *seed)
			for _, dname := range dNames {
				dist, err := ycsb.ParseDistribution(dname)
				die(err)
				if w.Name == "D" && !*all && !distsSet {
					// Paper default: D is latest-read. An explicit -dists
					// always wins — no silent substitution.
					dist = ycsb.Latest
				}
				for _, iname := range split(*indexes) {
					for _, b := range batches {
						for _, sc := range shardCounts {
							if sc > 0 && iname != "hot" {
								continue // only hot has a range-sharded variant
							}
							for _, am := range asyncModes {
								if am && sc == 0 {
									continue // only the sharded tree has submission queues
								}
								for _, wm := range walModes {
									if wm && sc == 0 {
										continue // durable mode exists only for the sharded tree
									}
									for _, mb := range budgets {
										if mb != 0 && !wm {
											continue // cold sections live in the durable directory
										}
										if mb != 0 && w.Name == "load" {
											continue // the tier is enabled after the load phase
										}
										for _, nm := range netModes {
											if nm && sc == 0 {
												continue // hot-server always serves the sharded tree
											}
											if nm && mb != 0 {
												continue // the cold-tier sweep measures the in-process index
											}
											if nm && wm && *addr != "" {
												continue // an external server's durability is its own config
											}
											for _, cn := range connCounts {
												if cn > 0 && !nm {
													continue // pools exist only for networked configs
												}
												if nm && am && cn > 0 {
													continue // a pool borrows per op: no pipeline for the async contract
												}
												for _, codec := range codecs {
													if codec != hot.SnapshotCodecRaw && (sc == 0 || nm) {
														continue // codecs shape snapshots of the in-process sharded tree
													}
													var inst bench.Instance
													var durable, sharded *hot.ShardedTree
													var walDir string
													var srv *server.Server
													var remote *ycsb.RemoteIndex
													var pooled *ycsb.PooledRemoteIndex
													if wm {
														var err error
														walDir, err = os.MkdirTemp("", "hot-ycsb-wal-*")
														die(err)
													}
													if nm {
														// Networked configuration: the index lives behind
														// hot-server and the runner drives it through the
														// wire. With -conns 0 a single RemoteIndex owns one
														// connection, so the row runs single-threaded; with
														// -conns N a shared pool serves N concurrent workers.
														target := *addr
														if target == "" {
															var err error
															srv, err = server.New(server.Options{Shards: sc, Sample: data.Keys[:*n], Dir: walDir})
															die(err)
															target, err = srv.Listen("127.0.0.1:0")
															die(err)
														}
														if cn > 0 {
															pooled = ycsb.DialPool(target, cn)
															inst = bench.NewInstance(fmt.Sprintf("hot-s%d", sc), pooled, func() int { return 0 })
														} else {
															var err error
															remote, err = ycsb.Dial(target)
															die(err)
															inst = bench.NewInstance(fmt.Sprintf("hot-s%d", sc), remote, func() int { return 0 })
														}
													} else if sc > 0 {
														var t *hot.ShardedTree
														if wm {
															var err error
															t, _, err = hot.OpenDurableShardedTree(walDir, data.Store.Key, sc, data.Keys[:*n], hot.DurableOptions{Codec: codec})
															die(err)
															durable = t
														} else {
															t = hot.NewShardedTree(data.Store.Key, sc, data.Keys[:*n])
															t.SetSnapshotCodec(codec)
														}
														sharded = t
														inst = bench.NewInstance(fmt.Sprintf("hot-s%d", sc), t,
															func() int { return t.Memory().PaperBytes })
													} else {
														var err error
														inst, err = bench.New(iname, data.Store)
														die(err)
													}
													r := data.Runner(inst, *n, *seed)
													r.CaptureLatency = *latency
													r.BatchLookups = b
													r.Async = am
													loadThreads := 1
													if sc > 0 && !nm {
														loadThreads = *threads
														if loadThreads <= 0 {
															loadThreads = sc
														}
													} else if pooled != nil {
														// One worker per pooled connection.
														loadThreads = cn
													}
													var res ycsb.Result
													var coldBudget int64
													if w.Name == "load" {
														res = r.LoadParallel(loadThreads)
													} else {
														r.LoadParallel(loadThreads)
														if mb != 0 && durable != nil {
															// Arm the cold tier against the loaded
															// footprint: -k budgets resolve to 1/k of
															// the measured resident bytes, and
															// EnableColdTier demotes down to budget
															// before the transaction phase starts.
															coldBudget = mb
															if coldBudget < 0 {
																coldBudget = int64(durable.Memory().GoBytes) / -mb
															}
															die(durable.EnableColdTier(hot.ColdTierConfig{MemoryBudget: coldBudget}))
														}
														// loadThreads > 1 only for sharded
														// configs — the only index safe for
														// concurrent transaction clients.
														res = r.RunParallel(w, dist, *ops, loadThreads)
													}
													name := inst.Name
													if am {
														name += "+q"
													}
													if wm {
														name += "+wal"
													}
													if mb != 0 {
														name += "+cold"
													}
													if nm {
														name += "+net"
														if pooled != nil {
															name += fmt.Sprintf("+c%d", cn)
														}
													}
													if codec != hot.SnapshotCodecRaw {
														name += "+" + codec.String()
													}
													// Snapshot-size measurements for sharded in-process
													// configs: what a replication bootstrap streams, and
													// (durable) what a checkpoint leaves on disk.
													var snapBytes, bootBytes int64
													if sharded != nil {
														var cw countWriter
														die(sharded.SnapshotTo(&cw))
														bootBytes = cw.n
														if durable != nil {
															die(durable.Checkpoint())
															fi, err := os.Stat(filepath.Join(walDir, "snap.hot"))
															die(err)
															snapBytes = fi.Size()
														}
													}
													fmt.Printf("%-9s %-26s %-8s %-10s %6d %10.3f %9d",
														ds, w.Name+" ("+w.Description+")", dist, name, b, res.Mops(), res.NotFound)
													if res.Latency != nil {
														fmt.Printf("   %s", res.Latency)
													}
													fmt.Println()
													if *opstats {
														if st, ok := inst.Idx.(interface{ OpStats() hot.OpStats }); ok {
															fmt.Printf("%-9s   opstats: %s\n", "", st.OpStats())
														}
													}
													asyncRec, walRec, netRec := 0, 0, 0
													if am {
														asyncRec = 1
													}
													if wm {
														walRec = 1
													}
													if nm {
														netRec = 1
													}
													connsRec := 0
													if pooled != nil {
														connsRec = cn
													}
													rec := record{
														Dataset: ds, Workload: w.Name, Dist: dist.String(), Index: name,
														Batch: b, Shards: sc, Threads: loadThreads, Async: asyncRec, Wal: walRec, Net: netRec,
														Conns: connsRec, Mops: res.Mops(), Misses: res.NotFound,
														SnapshotBytes: snapBytes, BootstrapBytes: bootBytes,
													}
													if sharded != nil {
														rec.Codec = codec.String()
														if len(codecs) > 1 || codec != hot.SnapshotCodecRaw {
															fmt.Printf("%-9s   snapshot: bootstrap=%d B checkpoint=%d B (codec %s)\n",
																"", bootBytes, snapBytes, codec)
														}
													}
													if res.Latency != nil {
														us := func(q float64) float64 {
															return float64(res.Latency.Quantile(q)) / 1e3
														}
														rec.P50us, rec.P99us, rec.P999us = us(0.50), us(0.99), us(0.999)
													}
													if mb != 0 && durable != nil {
														cs := durable.ColdStats()
														rec.MemBudget = coldBudget
														rec.ColdShards = cs.ColdShards
														rec.Demotions = cs.Demotions
														rec.Promotions = cs.Promotions
														rec.HitRate = cs.HitRate()
														fmt.Printf("%-9s   cold: shards=%d/%d demotions=%d promotions=%d hit_rate=%.3f\n",
															"", cs.ColdShards, sc, cs.Demotions, cs.Promotions, cs.HitRate())
													}
													records = append(records, rec)
													if pooled != nil {
														die(pooled.Close())
													}
													if remote != nil {
														die(remote.Close())
													}
													if srv != nil {
														die(srv.Close())
													}
													if durable != nil {
														die(durable.Close())
													}
													if walDir != "" {
														die(os.RemoveAll(walDir))
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	if *jsonPath != "" {
		blob, err := json.MarshalIndent(records, "", "  ")
		die(err)
		die(os.WriteFile(*jsonPath, append(blob, '\n'), 0o644))
		fmt.Printf("wrote %d records to %s\n", len(records), *jsonPath)
	}
}

// countWriter counts bytes without keeping them — sizing a replication
// bootstrap stream without materializing it.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hot-ycsb:", err)
		os.Exit(1)
	}
}
