// hot-server serves a sharded HOT index over TCP (see the internal/wire
// package for the protocol and internal/server for the semantics).
//
//	hot-server -addr :7070 -shards 8                 # in-memory leader
//	hot-server -addr :7070 -dir /data/hot            # durable leader
//	hot-server -addr :7071 -follow leader:7070       # read-only follower
//	hot-server -smoke                                # self-contained smoke test
//
// A durable leader serves replication streams: a follower dials it,
// bootstraps from a streaming snapshot — opening each shard for reads as
// its section completes — and then tails the leader's write-ahead logs
// continuously.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hotindex/hot/internal/hotclient"
	"github.com/hotindex/hot/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	shards := flag.Int("shards", 8, "shard count for a fresh index")
	dir := flag.String("dir", "", "durable directory (empty: in-memory)")
	commitDelay := flag.Duration("commit-delay", 0, "group-commit fsync accumulation window")
	follow := flag.String("follow", "", "leader address to follow (read-only replica mode)")
	maxConns := flag.Int("max-conns", 0, "connection limit; accepts past it get a typed busy rejection (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 0, "close connections idle past this (0 = 5m default, negative disables; never applies to replication streams)")
	writeTimeout := flag.Duration("write-timeout", 0, "per-write deadline; evicts wedged consumers (0 = 30s default, negative disables)")
	dialTimeout := flag.Duration("dial-timeout", 0, "follower's per-attempt bound on dialing its leader (0 = 10s default)")
	memBudget := flag.Int64("mem-budget", 0, "resident-trie byte budget; past it cold shards are served from disk through a page cache (0 = unbounded; requires -dir)")
	cacheBytes := flag.Int64("cache-bytes", 0, "cold tier's decoded page cache bound (0 = mem-budget/8, floored at 8 MiB)")
	smoke := flag.Bool("smoke", false, "run a self-contained leader+client+follower smoke test and exit")
	flag.Parse()

	if *smoke {
		if err := runSmoke(); err != nil {
			fmt.Fprintln(os.Stderr, "smoke: FAIL:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: ok")
		return
	}

	s, err := server.New(server.Options{
		Shards:           *shards,
		Dir:              *dir,
		GroupCommitDelay: *commitDelay,
		Follow:           *follow,
		MaxConns:         *maxConns,
		IdleTimeout:      *idleTimeout,
		WriteTimeout:     *writeTimeout,
		DialTimeout:      *dialTimeout,
		MemoryBudget:     *memBudget,
		CacheBytes:       *cacheBytes,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hot-server:", err)
		os.Exit(1)
	}
	bound, err := s.Listen(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hot-server:", err)
		os.Exit(1)
	}
	mode := "in-memory leader"
	if *dir != "" {
		mode = "durable leader (" + *dir + ")"
	}
	if *follow != "" {
		mode = "follower of " + *follow
	}
	fmt.Printf("hot-server: %s listening on %s\n", mode, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	st := s.Stats()
	fmt.Printf("hot-server: shutting down (conns=%d rejected=%d deadline_closes=%d", st.Conns, st.RejectedConns, st.DeadlineCloses)
	if st.Follower {
		fmt.Printf(" reconnects=%d resumes=%d full_resyncs=%d", st.Reconnects, st.Resumes, st.FullResyncs)
	} else if st.Durable {
		fmt.Printf(" resumes=%d full_resyncs=%d", st.Resumes, st.FullResyncs)
	}
	if st.MemBudget > 0 {
		fmt.Printf(" cold_shards=%d demotions=%d promotions=%d cache_hits=%d cache_misses=%d cache_evictions=%d",
			st.ColdShards, st.Demotions, st.Promotions, st.CacheHits, st.CacheMisses, st.CacheEvictions)
	}
	fmt.Println(")")
	// Drain gracefully, but never hang a shutdown longer than 30s.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "hot-server: close:", err)
		os.Exit(1)
	}
}

// runSmoke exercises the full networked stack in one process: a durable
// leader on a loopback port, a client doing pipelined writes + reads +
// scans + a flush barrier, then a follower bootstrapping over real TCP and
// serving the same reads. It is the CI gate for the server path (`make
// server-smoke`).
func runSmoke() error {
	dir, err := os.MkdirTemp("", "hot-smoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	leader, err := server.New(server.Options{Shards: 4, Dir: dir})
	if err != nil {
		return fmt.Errorf("leader: %w", err)
	}
	defer leader.Close()
	laddr, err := leader.Listen("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("leader listen: %w", err)
	}

	c, err := hotclient.DialTimeout(laddr, 5*time.Second)
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer c.Close()

	const n = 1000
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%05d", i)) }
	for i := 0; i < n; i++ {
		if err := c.Set(key(i), uint64(i+1)); err != nil {
			return fmt.Errorf("set: %w", err)
		}
	}
	if _, _, err := c.Flush(); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	for _, i := range []int{0, 1, n / 2, n - 1} {
		tid, found, err := c.Get(key(i))
		if err != nil || !found || tid != uint64(i+1) {
			return fmt.Errorf("get %q = (%d, %v, %v), want (%d, true, nil)", key(i), tid, found, err, i+1)
		}
	}
	entries, err := c.Scan(key(10), 5)
	if err != nil || len(entries) != 5 || !bytes.Equal(entries[0].Key, key(10)) {
		return fmt.Errorf("scan from %q returned %d entries (err %v), want 5 from that key", key(10), len(entries), err)
	}

	fol, err := server.New(server.Options{Follow: laddr})
	if err != nil {
		return fmt.Errorf("follower: %w", err)
	}
	defer fol.Close()
	deadline := time.Now().Add(10 * time.Second)
	for fol.Follower().Ready() < 4 {
		if err := fol.FeedErr(); err != nil {
			return fmt.Errorf("follower feed: %w", err)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("follower bootstrap timed out at %d/4 shards", fol.Follower().Ready())
		}
		time.Sleep(time.Millisecond)
	}
	if err := fol.Follower().Verify(); err != nil {
		return fmt.Errorf("follower verify: %w", err)
	}
	if got := fol.Follower().Len(); got != n {
		return fmt.Errorf("follower holds %d keys, want %d", got, n)
	}
	faddr, err := fol.Listen("127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("follower listen: %w", err)
	}
	fc, err := hotclient.Dial(faddr)
	if err != nil {
		return fmt.Errorf("dial follower: %w", err)
	}
	defer fc.Close()
	tid, found, err := fc.Get(key(42))
	if err != nil || !found || tid != 43 {
		return fmt.Errorf("follower get = (%d, %v, %v), want (43, true, nil)", tid, found, err)
	}
	st, err := fc.Stats()
	if err != nil || !st.Follower || st.Ready != 4 {
		return fmt.Errorf("follower stats = %+v (err %v)", st, err)
	}
	return nil
}
