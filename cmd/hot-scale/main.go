// hot-scale regenerates Figure 10: multi-threaded insert and lookup
// throughput on the url data set for the synchronized index variants —
// HOT with its ROWEX protocol, and ART/Masstree behind the striped
// synchronization substitution (see DESIGN.md). The paper inserts 50M keys
// and runs 100M lookups per thread count, taking the median of 7 runs;
// defaults here are laptop-sized.
//
// Note: meaningful speedups require multiple CPU cores (the paper's server
// has 10); on a single-core host the harness still runs but reports flat
// scaling.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/hotindex/hot/internal/art"
	"github.com/hotindex/hot/internal/bench"
	"github.com/hotindex/hot/internal/core"
	"github.com/hotindex/hot/internal/dataset"
	"github.com/hotindex/hot/internal/masstree"
	"github.com/hotindex/hot/internal/striped"
)

// concIndex is the minimal concurrent interface the experiment needs.
type concIndex interface {
	Insert(k []byte, tid uint64) bool
	Lookup(k []byte) (uint64, bool)
	Len() int
}

func main() {
	var (
		n       = flag.Int("n", 500_000, "keys to insert per run")
		lookups = flag.Int("lookups", 1_000_000, "random lookups per run")
		ds      = flag.String("dataset", "url", "data set")
		maxThr  = flag.Int("threads", runtime.GOMAXPROCS(0), "maximum thread count")
		runs    = flag.Int("runs", 3, "runs per configuration (median reported)")
		seed    = flag.Int64("seed", 2018, "data seed")
		indexes = flag.String("indexes", "hot,art,masstree", "comma list (hot|art|masstree|btree)")
	)
	flag.Parse()

	kind, err := dataset.ParseKind(*ds)
	die(err)
	data := bench.Load(kind, *n, 0, *seed)

	builders := map[string]func() concIndex{
		"hot": func() concIndex { return core.NewConcurrent(data.Store.Key) },
		"art": func() concIndex {
			return striped.New(64, func() striped.Index { return artAdapter{art.New(data.Store.Key)} })
		},
		"masstree": func() concIndex {
			return striped.New(64, func() striped.Index { return masstree.New() })
		},
		// The STX B-tree is omitted, like in the paper ("due to lack of
		// synchronization, we omit the STX B-Tree").
	}

	fmt.Printf("dataset %s: %d inserts + %d lookups per run, median of %d runs\n",
		kind, *n, *lookups, *runs)
	fmt.Printf("%-9s %8s %14s %14s\n", "index", "threads", "insert mops", "lookup mops")

	for _, name := range split(*indexes) {
		mk, ok := builders[name]
		if !ok {
			die(fmt.Errorf("unknown index %q", name))
		}
		for threads := 1; threads <= *maxThr; threads++ {
			var ins, look []float64
			for run := 0; run < *runs; run++ {
				i, l := oneRun(mk(), data, threads, *lookups, *seed+int64(run))
				ins = append(ins, i)
				look = append(look, l)
			}
			fmt.Printf("%-9s %8d %14.3f %14.3f\n", name, threads, median(ins), median(look))
		}
	}
}

func oneRun(idx concIndex, data *bench.Data, threads, lookups int, seed int64) (insertMops, lookupMops float64) {
	n := len(data.Keys)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += threads {
				idx.Insert(data.Keys[i], data.TIDs[i])
			}
		}(w)
	}
	wg.Wait()
	insertMops = float64(n) / time.Since(start).Seconds() / 1e6
	if idx.Len() != n {
		die(fmt.Errorf("index lost keys: %d of %d", idx.Len(), n))
	}

	start = time.Now()
	per := lookups / threads
	for w := 0; w < threads; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < per; i++ {
				k := data.Keys[rng.Intn(n)]
				if _, ok := idx.Lookup(k); !ok {
					panic("lookup missed a loaded key")
				}
			}
		}(w)
	}
	wg.Wait()
	lookupMops = float64(per*threads) / time.Since(start).Seconds() / 1e6
	return insertMops, lookupMops
}

// artAdapter narrows art.Tree to the striped.Index interface (identical
// methods; declared for documentation symmetry).
type artAdapter struct{ *art.Tree }

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

func split(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hot-scale:", err)
		os.Exit(1)
	}
}
