// hot-depth regenerates Figure 11: the depth distribution of leaf values
// in HOT versus the "pure trie" baselines — ART and a binary Patricia trie
// — for every data set. Paper scale is -n 50000000.
package main

import (
	"flag"
	"fmt"
	"sort"

	"github.com/hotindex/hot/internal/art"
	"github.com/hotindex/hot/internal/bench"
	"github.com/hotindex/hot/internal/core"
	"github.com/hotindex/hot/internal/dataset"
	"github.com/hotindex/hot/internal/patricia"
)

func main() {
	var (
		n    = flag.Int("n", 1_000_000, "keys to load")
		seed = flag.Int64("seed", 2018, "data seed")
		hist = flag.Bool("hist", false, "print full depth histograms")
	)
	flag.Parse()

	fmt.Printf("leaf depth distribution over %d keys\n", *n)
	fmt.Printf("%-9s %-9s %8s %8s %8s\n", "dataset", "index", "min", "mean", "max")

	for _, kind := range dataset.Kinds() {
		data := bench.Load(kind, *n, 0, *seed)

		hotTrie := core.New(data.Store.Key)
		artTree := art.New(data.Store.Key)
		binTrie := patricia.New(data.Store.Key)
		for i, k := range data.Keys {
			hotTrie.Insert(k, data.TIDs[i])
			artTree.Insert(k, data.TIDs[i])
			binTrie.Insert(k, data.TIDs[i])
		}

		report(kind.String(), "hot", *hist, histStats{hotTrie.Depths().Min, hotTrie.Depths().Mean, hotTrie.Depths().Max, hotTrie.Depths().Hist})
		report(kind.String(), "art", *hist, histStats{artTree.Depths().Min, artTree.Depths().Mean, artTree.Depths().Max, artTree.Depths().Hist})
		report(kind.String(), "bin", *hist, histStats{binTrie.Depths().Min, binTrie.Depths().Mean, binTrie.Depths().Max, binTrie.Depths().Hist})
		fmt.Println()
	}
}

type histStats struct {
	min  int
	mean float64
	max  int
	hist map[int]int
}

func report(ds, index string, printHist bool, st histStats) {
	fmt.Printf("%-9s %-9s %8d %8.2f %8d\n", ds, index, st.min, st.mean, st.max)
	if !printHist {
		return
	}
	depths := make([]int, 0, len(st.hist))
	for d := range st.hist {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	for _, d := range depths {
		fmt.Printf("    depth %3d: %d\n", d, st.hist[d])
	}
}
