// hot-snap measures snapshot persistence: for each data set it builds a
// Tree, saves a crash-safe snapshot to disk, then times loading that
// snapshot back against rebuilding the index from raw keys — the recovery
// path a database restart would take. The loaded tree is verified against
// the original on every run.
//
//	hot-snap                                 # all four data sets, 1M keys
//	hot-snap -n 200000 -datasets url,integer
//	hot-snap -json SNAP.json                 # machine-readable records
//	hot-snap -codec packed                   # delta-compressed blocks
//	hot-snap -codec packed -baseline results/codec_baseline.json
//
// The integer data set is saved under the embedded-TID convention (every
// TID is the big-endian decode of its 8-byte key, resolved through
// tidstore.Uint64Key), the shape the packed codec elides TID streams for
// entirely — the paper's key-embedding optimization. With -baseline, each
// data set's bytes/key is compared against the checked-in baseline and
// the run fails if any regresses by more than 5%.
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	hot "github.com/hotindex/hot"
	"github.com/hotindex/hot/internal/dataset"
	"github.com/hotindex/hot/internal/persist"
	"github.com/hotindex/hot/internal/tidstore"
)

// record is one data set's result in the -json output.
type record struct {
	Dataset     string  `json:"dataset"`
	Codec       string  `json:"codec"`
	N           int     `json:"n"`
	Bytes       int64   `json:"bytes"`
	BytesPerKey float64 `json:"bytes_per_key"`
	// UnpackedBytes is what the same snapshot occupies with every block
	// raw; Bytes/UnpackedBytes is the achieved compression ratio.
	UnpackedBytes int64     `json:"unpacked_bytes"`
	PackedBlocks  int       `json:"packed_blocks"`
	SaveMs        float64   `json:"save_ms"`
	LoadMs        float64   `json:"load_ms"`
	RebuildMs     float64   `json:"rebuild_ms"`
	Speedup       float64   `json:"speedup"`
	Sections      []section `json:"sections"`
}

// baseline is the checked-in bytes/key reference the nightly CI job
// compares against (results/codec_baseline.json).
type baseline struct {
	Codec       string             `json:"codec"`
	N           int                `json:"n"`
	BytesPerKey map[string]float64 `json:"bytes_per_key"`
}

// section is the on-disk layout of one snapshot section, from
// persist.ScanSections — how the bytes divide into CRC-framed blocks
// and (for indexed files) the trailing HIDX block index.
type section struct {
	Kind          string  `json:"kind"`
	Bytes         int64   `json:"bytes"`
	Blocks        int     `json:"blocks"`
	PackedBlocks  int     `json:"packed_blocks"`
	UnpackedBytes int64   `json:"unpacked_bytes"`
	Entries       uint64  `json:"entries"`
	BytesPerKey   float64 `json:"bytes_per_key"`
	IndexBytes    int64   `json:"index_bytes,omitempty"`
}

// kindName maps a section header's content kind to a stable label.
func kindName(k uint16) string {
	switch k {
	case persist.KindTree:
		return "tree"
	case persist.KindMap:
		return "map"
	case persist.KindUint64Set:
		return "uint64set"
	case persist.KindShardManifest:
		return "manifest"
	case persist.KindWAL:
		return "wal"
	}
	return fmt.Sprintf("kind%d", k)
}

func main() {
	var (
		n         = flag.Int("n", 1_000_000, "keys per data set")
		datasets  = flag.String("datasets", "url,email,yago,integer", "comma list of data sets")
		dir       = flag.String("dir", "", "directory for snapshot files (default: a temp dir, removed on exit)")
		indexed   = flag.Bool("indexed", false, "save with the sparse block index (the cold tier's on-disk lookup format)")
		jsonPath  = flag.String("json", "", "additionally write results as a JSON array to this file")
		seed      = flag.Int64("seed", 2018, "data seed")
		codecName = flag.String("codec", "raw", "snapshot block codec: raw or packed")
		basePath  = flag.String("baseline", "", "compare bytes/key against this baseline JSON; exit 1 on a >5% regression")
	)
	flag.Parse()

	// Validate the codec before any work: a typo must be a hard error, not
	// a silent fall-through to raw (same contract as -datasets).
	codec, err := hot.ParseSnapshotCodec(*codecName)
	die(err)
	var base *baseline
	if *basePath != "" {
		blob, err := os.ReadFile(*basePath)
		die(err)
		base = &baseline{}
		die(json.Unmarshal(blob, base))
		if base.Codec != codec.String() {
			die(fmt.Errorf("baseline %s was recorded for codec %q, this run uses %q",
				*basePath, base.Codec, codec))
		}
		if base.N != *n {
			die(fmt.Errorf("baseline %s was recorded at -n %d, this run uses -n %d",
				*basePath, base.N, *n))
		}
	}

	out := *dir
	if out == "" {
		tmp, err := os.MkdirTemp("", "hot-snap-*")
		die(err)
		defer os.RemoveAll(tmp)
		out = tmp
	}

	fmt.Printf("%d keys per data set, codec %s, snapshots in %s\n", *n, codec, out)
	fmt.Printf("%-9s %10s %12s %9s %9s %11s %8s\n",
		"dataset", "n", "bytes", "save_ms", "load_ms", "rebuild_ms", "speedup")

	var records []record
	regressed := false
	for _, name := range splitComma(*datasets) {
		kind, err := dataset.ParseKind(name)
		die(err)
		keys := dataset.Generate(kind, *n, *seed)
		// Integer keys use the embedded-TID convention: the TID is the key,
		// so the snapshot needs no TID storage at all (and the packed codec
		// elides the TID stream). Everything else resolves through a store.
		loader := hot.Loader(tidstore.Uint64Key)
		tids := make([]uint64, len(keys))
		if kind == dataset.Integer {
			for i, k := range keys {
				tids[i] = binary.BigEndian.Uint64(k)
			}
		} else {
			store := &tidstore.Store{}
			for i, k := range keys {
				tids[i] = store.Add(k)
			}
			loader = store.Key
		}

		// Build the original index (also the rebuild-path baseline shape).
		build := func() (*hot.Tree, time.Duration) {
			start := time.Now()
			tr := hot.New(loader)
			tr.SetSnapshotCodec(codec)
			for i, k := range keys {
				tr.Insert(k, tids[i])
			}
			return tr, time.Since(start)
		}
		orig, _ := build()

		path := filepath.Join(out, name+".hot")
		start := time.Now()
		if *indexed {
			die(orig.SaveIndexedFile(path))
		} else {
			die(orig.SaveFile(path))
		}
		saveDur := time.Since(start)
		fi, err := os.Stat(path)
		die(err)

		start = time.Now()
		loaded, err := hot.LoadTreeFile(path, loader)
		die(err)
		loadDur := time.Since(start)

		// The rebuild path: what a restart costs without a snapshot.
		rebuilt, rebuildDur := build()

		check(orig, loaded, "loaded")
		check(orig, rebuilt, "rebuilt")

		infos, err := persist.ScanSections(path)
		die(err)
		var secs []section
		var packedBlocks int
		var unpackedBytes int64
		for _, si := range infos {
			s := section{
				Kind:          kindName(si.Kind),
				Bytes:         si.Bytes,
				Blocks:        si.Blocks,
				PackedBlocks:  si.PackedBlocks,
				UnpackedBytes: si.UnpackedBytes,
				Entries:       si.Entries,
				IndexBytes:    si.IndexBytes,
			}
			if si.Entries > 0 {
				s.BytesPerKey = float64(si.Bytes) / float64(si.Entries)
			}
			packedBlocks += si.PackedBlocks
			unpackedBytes += si.UnpackedBytes + si.IndexBytes
			secs = append(secs, s)
		}

		rec := record{
			Dataset:       name,
			Codec:         codec.String(),
			N:             len(keys),
			Bytes:         fi.Size(),
			BytesPerKey:   float64(fi.Size()) / float64(len(keys)),
			UnpackedBytes: unpackedBytes,
			PackedBlocks:  packedBlocks,
			SaveMs:        ms(saveDur),
			LoadMs:        ms(loadDur),
			RebuildMs:     ms(rebuildDur),
			Speedup:       rebuildDur.Seconds() / loadDur.Seconds(),
			Sections:      secs,
		}
		records = append(records, rec)
		fmt.Printf("%-9s %10d %12d %9.1f %9.1f %11.1f %7.2fx\n",
			rec.Dataset, rec.N, rec.Bytes, rec.SaveMs, rec.LoadMs, rec.RebuildMs, rec.Speedup)
		for _, s := range secs {
			fmt.Printf("          section %-9s %8d blocks (%d packed), %5.1f B/key, index %d B\n",
				s.Kind, s.Blocks, s.PackedBlocks, s.BytesPerKey, s.IndexBytes)
		}
		if rec.PackedBlocks > 0 {
			fmt.Printf("          packed to %.1f%% of the raw layout (%d of %d B)\n",
				100*float64(rec.Bytes)/float64(rec.UnpackedBytes), rec.Bytes, rec.UnpackedBytes)
		}

		if base != nil {
			want, ok := base.BytesPerKey[name]
			if !ok {
				die(fmt.Errorf("baseline %s has no entry for data set %q", *basePath, name))
			}
			if rec.BytesPerKey > want*1.05 {
				fmt.Fprintf(os.Stderr, "hot-snap: %s bytes/key regressed: %.2f vs baseline %.2f (+%.1f%%)\n",
					name, rec.BytesPerKey, want, 100*(rec.BytesPerKey/want-1))
				regressed = true
			} else {
				fmt.Printf("          baseline %.2f B/key, measured %.2f (%+.1f%%)\n",
					want, rec.BytesPerKey, 100*(rec.BytesPerKey/want-1))
			}
		}
	}

	if *jsonPath != "" {
		blob, err := json.MarshalIndent(records, "", "  ")
		die(err)
		die(os.WriteFile(*jsonPath, append(blob, '\n'), 0o644))
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if regressed {
		os.Exit(1)
	}
}

// check asserts got is structurally valid and indexes exactly the same
// entries as want, by Len and a paired full scan.
func check(want, got *hot.Tree, what string) {
	if err := got.Verify(); err != nil {
		die(fmt.Errorf("%s tree fails Verify: %v", what, err))
	}
	if got.Len() != want.Len() {
		die(fmt.Errorf("%s tree has %d entries, want %d", what, got.Len(), want.Len()))
	}
	wantTIDs := make([]uint64, 0, want.Len())
	want.Scan(nil, want.Len(), func(tid hot.TID) bool {
		wantTIDs = append(wantTIDs, tid)
		return true
	})
	i := 0
	ok := true
	got.Scan(nil, got.Len(), func(tid hot.TID) bool {
		ok = i < len(wantTIDs) && tid == wantTIDs[i]
		i++
		return ok
	})
	if !ok || i != len(wantTIDs) {
		die(fmt.Errorf("%s tree diverges from the original at entry %d", what, i))
	}
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hot-snap:", err)
		os.Exit(1)
	}
}
