package hot

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/hotindex/hot/internal/persist"
	"github.com/hotindex/hot/internal/shard"
	"github.com/hotindex/hot/internal/tidstore"
)

// Durable mode for the sharded index types: one write-ahead log per shard,
// so logging scales with the shards exactly like the writes themselves —
// shards share no log file, no commit lock and no fsync. See durable.go
// for the acknowledgement contract.
//
// Consistency hinges on one invariant: a shard's {log append, trie apply}
// pair is atomic under the shard's commit lock. The fsync happens outside
// the lock (group commit), but the cut a Checkpoint takes while holding
// every commit lock is therefore exact — no operation is ever logged but
// unapplied or applied but unlogged at the cut — so the snapshot written
// at the cut covers precisely LSNs ≤ cut and each log can be rotated to
// base = cut. Recovery replays each log's tail verbatim (inserts re-apply
// as inserts, rejections and all), which converges to the pre-crash state
// even when the snapshot is newer than a log's base (a crash between the
// snapshot rename and a rotation): every key's final value is decided by
// the last record touching it, or by the snapshot if no tail record does.

// durableState is the write-ahead side of a durable ShardedTree.
type durableState struct {
	dir    string
	kind   uint16 // snapshot section kind written at checkpoints
	mu     []paddedMutex
	wals   []*persist.WAL
	ckpt   sync.Mutex  // serializes Checkpoint, Close and replication sessions
	closed atomic.Bool // set by Close under every commit lock
}

// paddedMutex keeps the per-shard commit locks on separate cache lines, in
// the spirit of asyncShard's padding.
type paddedMutex struct {
	sync.Mutex
	_ [56]byte
}

func durableWalName(s int) string { return fmt.Sprintf("wal-%03d.log", s) }

func (d *durableState) snapPath() string { return filepath.Join(d.dir, durableSnapName) }

// append logs one operation to shard s's log. Callers hold d.mu[s]. A log
// failure panics: the store can no longer honor its durability contract
// (see durable.go). Writing after Close is a caller bug and panics with a
// clear message — the check is race-free because Close sets the flag while
// holding every commit lock.
func (d *durableState) append(s int, op shard.Op) uint64 {
	if d.closed.Load() {
		panic("hot: write to a closed durable index")
	}
	var wop persist.WalOp
	switch op.Kind {
	case shard.OpInsert:
		wop = persist.WalInsert
	case shard.OpUpsert:
		wop = persist.WalUpsert
	default:
		wop = persist.WalDelete
	}
	lsn, err := d.wals[s].Append(wop, op.Key, op.TID)
	if err != nil {
		panic(fmt.Sprintf("hot: shard %d write-ahead append failed: %v", s, err))
	}
	return lsn
}

// commit group-commits shard s's log through lsn, panicking on failure.
// Callers must NOT hold d.mu[s]: appends proceed while the fsync runs.
func (d *durableState) commit(s int, lsn uint64) {
	if err := d.wals[s].Commit(lsn); err != nil {
		panic(fmt.Sprintf("hot: shard %d log commit failed: %v", s, err))
	}
}

// Synchronous durable write paths: pin the shard hot under its shared
// write guard (promoting a cold shard first — a no-op without a cold
// tier), log under the commit lock, apply, then group-commit outside the
// commit lock but still under the guard, so a demotion's cut never falls
// between an append and its fsync.

func (d *durableState) insert(t *ShardedTree, s int, key []byte, tid TID) bool {
	tr := t.lockShardWrite(s)
	d.mu[s].Lock()
	lsn := d.append(s, shard.Op{Key: key, TID: tid, Kind: shard.OpInsert})
	ok := tr.Insert(key, tid)
	d.mu[s].Unlock()
	d.commit(s, lsn)
	t.unlockShardWrite(s)
	return ok
}

func (d *durableState) upsert(t *ShardedTree, s int, key []byte, tid TID) (TID, bool) {
	tr := t.lockShardWrite(s)
	d.mu[s].Lock()
	lsn := d.append(s, shard.Op{Key: key, TID: tid, Kind: shard.OpUpsert})
	old, replaced := tr.Upsert(key, tid)
	d.mu[s].Unlock()
	d.commit(s, lsn)
	t.unlockShardWrite(s)
	return old, replaced
}

func (d *durableState) delete(t *ShardedTree, s int, key []byte) bool {
	tr := t.lockShardWrite(s)
	d.mu[s].Lock()
	lsn := d.append(s, shard.Op{Key: key, Kind: shard.OpDelete})
	ok := tr.Delete(key)
	d.mu[s].Unlock()
	d.commit(s, lsn)
	t.unlockShardWrite(s)
	return ok
}

// Durable reports whether the tree was opened in durable (write-ahead
// logged) mode.
func (t *ShardedTree) Durable() bool { return t.dur != nil }

// LogSize returns the total byte length of the per-shard write-ahead logs
// — what a Checkpoint would truncate. It returns 0 for a non-durable tree.
func (t *ShardedTree) LogSize() int64 {
	if t.dur == nil {
		return 0
	}
	var n int64
	for _, w := range t.dur.wals {
		n += w.Size()
	}
	return n
}

// Checkpoint durably snapshots the whole tree and rotates every shard's
// log behind it, bounding recovery replay to what comes after. It holds
// every shard's commit lock for the duration — writers block, readers are
// unaffected — so the cut is exact: the snapshot covers precisely the
// records each log held, and each rotated log restarts at that base.
//
// Failure semantics: if writing the snapshot fails, the previous snapshot
// and the full logs are untouched (AtomicFile never replaces its target on
// error) and the store keeps running. If a log rotation fails, the new
// snapshot is already installed and a failure at shard k leaves shards < k
// rotated and shards ≥ k not. That on-disk state recovers exactly —
// replaying log records the snapshot already covers is a verbatim replay
// that converges to the same tree — but the live store can no longer bound
// its replay or promise future rotations, so a rotation failure poisons
// every shard's log: Checkpoint returns the error and any subsequent write
// panics like any other log failure. Reopen the directory to recover.
func (t *ShardedTree) Checkpoint() error {
	d := t.dur
	if d == nil {
		return errNotDurable
	}
	d.ckpt.Lock()
	defer d.ckpt.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	for s := range d.mu {
		d.mu[s].Lock()
	}
	defer func() {
		for s := range d.mu {
			d.mu[s].Unlock()
		}
	}()
	if err := persist.AtomicFile(d.snapPath(), func(w io.Writer) error {
		return t.writeSections(w, d.kind)
	}); err != nil {
		return err
	}
	for s := range d.wals {
		// A hot shard's stale cold file (left by a demotion it has since
		// been promoted out of, or by a previous ColdTier-enabled process
		// whose section this open folded back into memory) is superseded
		// by the snapshot just written and MUST go before this shard's
		// log rotates: recovery prefers a cold file over the snapshot
		// section, so rotating first would crash-expose a window where
		// the stale image plus an empty log replays to old data. A cold
		// shard keeps its file — that file IS its durable state.
		if t.shards[s].cold.Load() == nil {
			if err := os.Remove(filepath.Join(d.dir, coldFileName(s))); err != nil && !os.IsNotExist(err) {
				perr := fmt.Errorf("hot: removing shard %d's stale cold file after the snapshot was replaced: %w", s, err)
				for _, w := range d.wals {
					w.Poison(perr)
				}
				return perr
			}
		}
		if err := d.wals[s].Rotate(d.wals[s].LastLSN()); err != nil {
			perr := fmt.Errorf("hot: rotating shard %d log after the snapshot was replaced: %w", s, err)
			for _, w := range d.wals {
				w.Poison(perr)
			}
			return perr
		}
	}
	return nil
}

// Close flushes the async backlog, makes every logged write durable, and
// closes the logs. On a non-durable tree it is just the Flush barrier.
// Close is idempotent — a second call returns nil without touching the
// logs. The tree must not be written after Close: durable writes panic
// with a clear error instead of failing deep inside the log layer.
func (t *ShardedTree) Close() error {
	d := t.dur
	if d == nil {
		t.Flush()
		return nil
	}
	d.ckpt.Lock()
	defer d.ckpt.Unlock()
	if d.closed.Load() {
		return nil
	}
	t.Flush()
	// Set the closed flag under every commit lock, so it is ordered against
	// all in-flight appends: any write that got its lock first is logged and
	// closed out below; any write that gets its lock later panics cleanly.
	for s := range d.mu {
		d.mu[s].Lock()
	}
	d.closed.Store(true)
	for s := range d.mu {
		d.mu[s].Unlock()
	}
	var first error
	for s := range d.wals {
		if err := d.wals[s].Close(); err != nil && first == nil {
			first = fmt.Errorf("hot: closing shard %d log: %w", s, err)
		}
	}
	return first
}

// replayShardOp applies one replayed log record to shard s, verbatim: a
// rejected insert or absent delete replays as the no-op it was live. A key
// outside the shard's range means the record belongs to a different
// boundary generation (or is corrupt despite its CRC) and rejects the
// record, cutting the log there. A shard recovered cold is materialized
// lazily by its first replayed record (mustTree promotes it); shards
// whose log tail is empty stay cold through recovery.
func (t *ShardedTree) replayShardOp(s int, op persist.WalOp, key []byte, tid uint64) error {
	if !shard.Check(t.bounds, s, key) {
		return &SnapshotError{Kind: persist.ErrCorrupt,
			Detail: fmt.Sprintf("log record key %q outside shard %d's range", key, s)}
	}
	tr := t.mustTree(s)
	switch op {
	case persist.WalInsert:
		tr.Insert(key, tid)
	case persist.WalUpsert:
		tr.Upsert(key, tid)
	case persist.WalDelete:
		tr.Delete(key)
	}
	return nil
}

// OpenDurableShardedTree opens (or creates) the durable sharded tree
// stored in dir: `snap.hot` (the newest checkpoint snapshot, which also
// records the shard boundaries) plus one `wal-NNN.log` per shard.
// Recovery loads the snapshot — salvaging its longest valid prefix if
// damaged — then replays each shard's log tail, truncating torn tails.
// The shards and sample arguments are used only when dir holds no
// snapshot yet (first open); an existing snapshot's boundary table always
// wins, so the sample need not be stable across runs. The loader must
// resolve TIDs exactly as in past runs.
func OpenDurableShardedTree(dir string, loader Loader, shards int, sample [][]byte, opts DurableOptions) (*ShardedTree, RecoveryInfo, error) {
	if loader == nil {
		panic("hot: nil Loader")
	}
	return openDurableSharded(dir, loader, persist.KindTree, nil, shards, sample, opts)
}

func openDurableSharded(dir string, loader Loader, kind uint16, check func(key []byte, tid TID) error, shards int, sample [][]byte, opts DurableOptions) (*ShardedTree, RecoveryInfo, error) {
	var info RecoveryInfo
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, info, err
	}
	if re := opts.RecoverEntry; re != nil {
		inner := check
		check = func(key []byte, tid TID) error {
			if inner != nil {
				if err := inner(key, tid); err != nil {
					return err
				}
			}
			return re(key, tid)
		}
	}
	// Discover per-shard cold section files (see cold.go). A valid
	// cold-NNN.hot is always at least as new as the shard's snap.hot
	// section — demotion rotates the shard's log at the section cut — so
	// it supersedes the section as the shard's recovery base. A cold file
	// that no longer opens is a hard error: unlike a torn WAL tail (an
	// expected crash artifact), a rotten cold section held acknowledged
	// data and needs operator attention.
	coldReaders := map[int]*persist.PageReader{}
	closeColds := func() {
		for _, pr := range coldReaders {
			pr.Close()
		}
	}
	if coldFiles, gerr := filepath.Glob(filepath.Join(dir, "cold-*.hot")); gerr != nil {
		return nil, info, gerr
	} else {
		for _, p := range coldFiles {
			var s int
			if _, serr := fmt.Sscanf(filepath.Base(p), "cold-%03d.hot", &s); serr != nil {
				continue
			}
			pr, oerr := persist.OpenPageReaderFile(p, kind)
			if oerr != nil {
				closeColds()
				return nil, info, fmt.Errorf("hot: opening shard %d cold section %s: %w", s, filepath.Base(p), oerr)
			}
			coldReaders[s] = pr
		}
	}
	snap := filepath.Join(dir, durableSnapName)
	var t *ShardedTree
	if _, err := os.Stat(snap); err == nil {
		f, oerr := os.Open(snap)
		if oerr != nil {
			closeColds()
			return nil, info, oerr
		}
		nt, rep, lerr := readSharded(f, kind, loader, check, true, func(i int) bool {
			_, cold := coldReaders[i]
			return cold
		})
		f.Close()
		if lerr != nil {
			// Unusable manifest: without the boundary table the logs
			// cannot be routed, so recovery needs operator attention.
			closeColds()
			return nil, info, lerr
		}
		t = nt
		info.SnapshotEntries = rep.Entries
		if !rep.Complete {
			info.SnapshotDamage = rep.Damage
		}
	} else if !os.IsNotExist(err) {
		closeColds()
		return nil, info, err
	}
	fresh := t == nil
	if fresh {
		if shards < 1 {
			panic("hot: shard count must be >= 1")
		}
		// A fresh open must find a truly fresh directory. Write-ahead logs
		// without their snapshot mean the snapshot was lost, not that the
		// store is new: re-deriving boundaries from the (possibly different)
		// sample would overwrite what remains of the old boundary table, and
		// replay would then cut every log record routed outside its new
		// shard's range — silently discarding acknowledged writes. Refuse.
		if logs, err := filepath.Glob(filepath.Join(dir, "wal-*.log")); err != nil {
			closeColds()
			return nil, info, err
		} else if len(logs) > 0 || len(coldReaders) > 0 {
			names := make([]string, len(logs))
			for i, l := range logs {
				names[i] = filepath.Base(l)
			}
			// Cold section files without their snapshot mean the same
			// thing as orphaned logs: the directory held acknowledged
			// writes whose boundary table is gone.
			for s := range coldReaders {
				names = append(names, coldFileName(s))
			}
			closeColds()
			return nil, info, &OrphanedLogError{Dir: dir, Logs: names}
		}
		t = newShardedFromBounds(loader, shard.Boundaries(shards, sample))
	}
	t.SetSnapshotCodec(opts.Codec)
	d := &durableState{dir: dir, kind: kind,
		mu:   make([]paddedMutex, len(t.shards)),
		wals: make([]*persist.WAL, len(t.shards))}
	if fresh {
		// First durable open: persist the (empty) tree immediately so the
		// shard boundaries are on disk. Recovery always restores bounds
		// from the snapshot — never re-derives them from a sample that
		// might differ between runs and misroute every log record.
		if err := persist.AtomicFile(snap, func(w io.Writer) error {
			return t.writeSections(w, kind)
		}); err != nil {
			return nil, info, err
		}
	}
	for s := range coldReaders {
		if s >= len(t.shards) {
			closeColds()
			return nil, info, fmt.Errorf("hot: %s names shard %d but the snapshot manifest defines %d shards",
				coldFileName(s), s, len(t.shards))
		}
	}
	if opts.ColdTier != nil {
		// Arm the cold tier before replay, so cold-recovered shards can
		// be lazily materialized by their first log record. The cold
		// files live in the durable directory by construction. armCold
		// (not enableCold) on purpose: the shards that were cold in the
		// previous run still hold empty placeholder tries at this point,
		// and enableCold's immediate budget pass could demote one —
		// overwriting its real cold file, the shard's only durable copy,
		// with an empty section. The first pass runs at the end of this
		// open instead, once the cold readers are installed and the logs
		// replayed.
		cfg := *opts.ColdTier
		cfg.Dir = dir
		if _, err := t.armCold(cfg, kind); err != nil {
			closeColds()
			return nil, info, err
		}
	}
	if ct := t.cold.Load(); ct != nil {
		for s, pr := range coldReaders {
			if check != nil {
				// The caller's recovery hook (RecoverEntry, set-entry
				// validation) must still see every cold entry — a later
				// promotion resolves the shard's TIDs through the
				// caller's loader state, which is rebuilt right here.
				n, werr := walkPageReader(pr, check)
				info.SnapshotEntries += n
				if werr != nil {
					closeColds()
					return nil, info, fmt.Errorf("hot: shard %d cold section: %w", s, werr)
				}
			}
			gen := ct.ws[s].gen.Add(1)
			t.shards[s].cold.Store(&coldShard{ct: ct, pr: pr, shard: s, gen: gen})
			t.shards[s].tree.Store(nil)
		}
	} else {
		// This run has no cold tier: fold the sections back into the
		// in-memory tries. The files stay on disk — the next Checkpoint
		// removes them once the snapshot supersedes them.
		for s, pr := range coldReaders {
			n, werr := walkPageReader(pr, func(key []byte, tid TID) error {
				if check != nil {
					if cerr := check(key, tid); cerr != nil {
						return cerr
					}
				}
				return t.loadShardEntry(s, key, tid)
			})
			info.SnapshotEntries += n
			pr.Close()
			if werr != nil {
				closeColds()
				return nil, info, fmt.Errorf("hot: shard %d cold section: %w", s, werr)
			}
		}
	}
	for s := range t.shards {
		s := s
		w, rep, err := resumeWAL(filepath.Join(dir, durableWalName(s)), func(op persist.WalOp, key []byte, tid uint64) error {
			if check != nil && op != persist.WalDelete {
				if cerr := check(key, tid); cerr != nil {
					return cerr
				}
			}
			return t.replayShardOp(s, op, key, tid)
		}, opts.GroupCommitDelay)
		if err != nil {
			for _, pw := range d.wals {
				if pw != nil {
					pw.Close()
				}
			}
			closeColds()
			return nil, info, fmt.Errorf("hot: recovering shard %d log: %w", s, err)
		}
		d.wals[s] = w
		info.noteWALDamage(rep)
	}
	t.dur = d
	// Shards still cold after replay (their log tails were empty) start
	// this run cold; replayed shards were materialized by mustTree.
	for s := range t.shards {
		if t.shards[s].cold.Load() != nil {
			info.ColdShards++
		}
	}
	if ct := t.cold.Load(); ct != nil && ct.budget > 0 {
		// The budget pass deferred from armCold: every shard slot now
		// holds its real backing, so a tree loaded above budget demotes
		// genuinely resident shards — never a placeholder standing in
		// for a not-yet-installed cold section.
		ct.maintain()
	}
	return t, info, nil
}

// walkPageReader streams every entry of a cold section file through fn,
// block by block, returning how many entries fn accepted.
func walkPageReader(pr *persist.PageReader, fn func(key []byte, tid TID) error) (uint64, error) {
	var n uint64
	for i := 0; i < pr.Blocks(); i++ {
		p, err := pr.ReadBlock(i)
		if err != nil {
			return n, err
		}
		for j := 0; j < p.Len(); j++ {
			if err := fn(p.Key(j), p.TID(j)); err != nil {
				return n, err
			}
			n++
		}
	}
	return n, nil
}

// ---- ShardedUint64Set ----

// OpenDurableShardedUint64Set opens (or creates) the durable sharded
// integer set stored in dir (see OpenDurableShardedTree; the sample seeds
// the shard boundaries on first open only).
func OpenDurableShardedUint64Set(dir string, shards int, sample []uint64, opts DurableOptions) (*ShardedUint64Set, RecoveryInfo, error) {
	skeys := make([][]byte, len(sample))
	flat := make([]byte, 8*len(sample))
	for i, v := range sample {
		binary.BigEndian.PutUint64(flat[8*i:], v)
		skeys[i] = flat[8*i : 8*i+8]
	}
	t, info, err := openDurableSharded(dir, tidstore.Uint64Key, persist.KindUint64Set, checkSetEntry, shards, skeys, opts)
	if err != nil {
		return nil, info, err
	}
	return &ShardedUint64Set{t: t}, info, nil
}

// Durable reports whether the set was opened in durable mode.
func (s *ShardedUint64Set) Durable() bool { return s.t.Durable() }

// LogSize returns the total byte length of the per-shard write-ahead logs.
func (s *ShardedUint64Set) LogSize() int64 { return s.t.LogSize() }

// Checkpoint durably snapshots the set and rotates the logs behind it (see
// ShardedTree.Checkpoint).
func (s *ShardedUint64Set) Checkpoint() error { return s.t.Checkpoint() }

// Close flushes the async backlog, makes every logged write durable and
// closes the logs (see ShardedTree.Close).
func (s *ShardedUint64Set) Close() error { return s.t.Close() }
